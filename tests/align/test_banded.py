"""Unit tests for the banded Smith-Waterman engine (Darwin-WGA contrast)."""

import numpy as np
import pytest

from repro.align import banded_extend, ydrop_extend
from repro.genome import encode, mutate, random_codes
from repro.scoring import default_scheme, unit_scheme

from ..conftest import make_homologous_pair


class TestExactnessOnDiagonalInputs:
    def test_perfect_match_within_band(self, bench_scheme):
        base = encode("ACGTACGTACGTACGTACGT")
        banded = banded_extend(base, base.copy(), bench_scheme, bandwidth=8)
        exact = ydrop_extend(base, base.copy(), bench_scheme)
        assert banded.score == exact.score
        assert (banded.end_i, banded.end_j) == (exact.end_i, exact.end_j)

    def test_matches_exact_on_indel_free_homology(self, rng, bench_scheme):
        for _ in range(10):
            t, q = make_homologous_pair(rng, divergence=0.06, indel=0.0)
            banded = banded_extend(t, q, bench_scheme, bandwidth=16)
            exact = ydrop_extend(t, q, bench_scheme)
            assert banded.score == exact.score


class TestBandMissesOffBandOptima:
    def test_large_indel_walks_off_band(self, rng, bench_scheme):
        """The paper's §2.1 criticism: the optimum may lie outside the band."""
        left = random_codes(rng, 150)
        right = random_codes(rng, 150)
        t = np.concatenate([left, right])
        # Query inserts 25 bases (crossable under the scaled y-drop): the
        # alignment ends 25 off the main diagonal.
        q = np.concatenate([left, random_codes(rng, 25), right])
        exact = ydrop_extend(t, q, bench_scheme)
        banded = banded_extend(t, q, bench_scheme, bandwidth=8)
        assert exact.end_j - exact.end_i >= 20  # the optimum is off-diagonal
        assert banded.score < exact.score

    def test_sensitivity_recovers_with_wider_band(self, rng, bench_scheme):
        left = random_codes(rng, 150)
        right = random_codes(rng, 150)
        t = np.concatenate([left, right])
        q = np.concatenate([left, random_codes(rng, 20), right])
        exact = ydrop_extend(t, q, bench_scheme)
        narrow = banded_extend(t, q, bench_scheme, bandwidth=8)
        wide = banded_extend(t, q, bench_scheme, bandwidth=128)
        assert narrow.score < exact.score
        assert wide.score == exact.score

    def test_never_beats_exact(self, rng, bench_scheme):
        for _ in range(15):
            t, q = make_homologous_pair(rng, divergence=0.08, indel=0.02)
            banded = banded_extend(t, q, bench_scheme, bandwidth=12)
            exact = ydrop_extend(t, q, bench_scheme)
            assert banded.score <= exact.score


class TestWorkBound:
    def test_band_caps_row_width(self, rng, bench_scheme):
        t, q = make_homologous_pair(rng)
        banded = banded_extend(t, q, bench_scheme, bandwidth=10)
        assert banded.stats.max_row_width <= 2 * 10 + 2

    def test_band_explores_fewer_cells(self, rng, bench_scheme):
        t, q = make_homologous_pair(rng)
        banded = banded_extend(t, q, bench_scheme, bandwidth=10)
        exact = ydrop_extend(t, q, bench_scheme)
        assert banded.stats.cells < exact.stats.cells


class TestEdgeCases:
    def test_empty_inputs(self, bench_scheme):
        res = banded_extend(encode(""), encode(""), bench_scheme)
        assert res.score == 0 and (res.end_i, res.end_j) == (0, 0)

    def test_zero_bandwidth_is_diagonal_only(self, bench_scheme):
        base = encode("ACGTACGT")
        res = banded_extend(base, base.copy(), bench_scheme, bandwidth=0)
        assert res.score == ydrop_extend(base, base.copy(), bench_scheme).score

    def test_negative_bandwidth_rejected(self, bench_scheme):
        with pytest.raises(ValueError):
            banded_extend(encode("A"), encode("A"), bench_scheme, bandwidth=-1)

    def test_unit_scheme_small_case(self):
        scheme = unit_scheme(ydrop=10**6)
        res = banded_extend(encode("AAAA"), encode("AAAA"), scheme, bandwidth=2)
        assert res.score == 4
