"""Unit tests for Alignment and edit scripts."""

import pytest

from repro.align import Alignment, merge_ops
from repro.genome import encode
from repro.scoring import unit_scheme


class TestMergeOps:
    def test_merge_adjacent(self):
        assert merge_ops([("M", 2), ("M", 3), ("I", 1)]) == (("M", 5), ("I", 1))

    def test_drop_zero(self):
        assert merge_ops([("M", 0), ("D", 2)]) == (("D", 2),)

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            merge_ops([("X", 1)])

    def test_negative_length(self):
        with pytest.raises(ValueError):
            merge_ops([("M", -1)])

    def test_empty(self):
        assert merge_ops([]) == ()


class TestAlignment:
    def test_basic_properties(self):
        a = Alignment(10, 20, 30, 38, score=5, ops=(("M", 8), ("D", 2)))
        assert a.target_length == 10
        assert a.query_length == 8
        assert a.length == 10
        assert a.cigar() == "8M2D"

    def test_length_without_ops(self):
        a = Alignment(0, 10, 0, 7, score=1)
        assert a.length == 10

    def test_span_mismatch_raises(self):
        with pytest.raises(ValueError):
            Alignment(0, 10, 0, 10, score=0, ops=(("M", 5),))

    def test_interval_order(self):
        with pytest.raises(ValueError):
            Alignment(10, 5, 0, 0, score=0)

    def test_ops_merged_on_construction(self):
        a = Alignment(0, 4, 0, 4, score=0, ops=(("M", 2), ("M", 2)))
        assert a.ops == (("M", 4),)


class TestRescore:
    def test_match_run(self):
        scheme = unit_scheme()
        t = encode("ACGTACGT")
        a = Alignment(0, 8, 0, 8, score=8, ops=(("M", 8),))
        assert a.rescore(t, t, scheme) == 8

    def test_with_gap(self):
        scheme = unit_scheme()  # open 2, extend 1
        t = encode("ACGTTT")
        q = encode("ACTT")
        # Align ACGTTT vs AC--TT: 4 matches, one 2-gap: 4 - (2 + 2) = 0
        a = Alignment(0, 6, 0, 4, score=0, ops=(("M", 2), ("D", 2), ("M", 2)))
        assert a.rescore(t, q, scheme) == 0

    def test_requires_ops(self):
        a = Alignment(0, 1, 0, 1, score=0)
        with pytest.raises(ValueError):
            a.rescore(encode("A"), encode("A"), unit_scheme())


class TestIdentity:
    def test_all_match(self):
        t = encode("ACGT")
        a = Alignment(0, 4, 0, 4, score=4, ops=(("M", 4),))
        assert a.identity(t, t) == 1.0

    def test_half_match(self):
        t = encode("AAAA")
        q = encode("AATT")
        a = Alignment(0, 4, 0, 4, score=0, ops=(("M", 4),))
        assert a.identity(t, q) == 0.5

    def test_no_ops(self):
        assert Alignment(0, 1, 0, 1, score=0).identity(encode("A"), encode("A")) == 0.0


class TestOverlaps:
    def test_overlapping(self):
        a = Alignment(0, 10, 0, 10, score=0)
        b = Alignment(5, 15, 5, 15, score=0)
        assert a.overlaps(b) and b.overlaps(a)

    def test_disjoint_target(self):
        a = Alignment(0, 10, 0, 10, score=0)
        b = Alignment(20, 30, 5, 15, score=0)
        assert not a.overlaps(b)

    def test_disjoint_query(self):
        a = Alignment(0, 10, 0, 10, score=0)
        b = Alignment(5, 15, 50, 60, score=0)
        assert not a.overlaps(b)
