"""Unit tests for the full-matrix Gotoh reference engine."""

import numpy as np
import pytest

from repro.align import gotoh_extend, gotoh_matrices
from repro.genome import encode
from repro.scoring import NEG_INF, unit_scheme


@pytest.fixture()
def scheme():
    # match 1, mismatch -1, open 2, extend 1, effectively no pruning here.
    return unit_scheme(ydrop=10**6)


class TestHandComputed:
    def test_perfect_match(self, scheme):
        r = gotoh_extend(encode("ACGT"), encode("ACGT"), scheme)
        assert r.score == 4
        assert (r.end_i, r.end_j) == (4, 4)
        assert r.alignment.ops == (("M", 4),)

    def test_empty_query(self, scheme):
        r = gotoh_extend(encode("ACGT"), encode(""), scheme)
        assert r.score == 0
        assert (r.end_i, r.end_j) == (0, 0)

    def test_mismatch_tail_not_extended(self, scheme):
        # Matching prefix then mismatching tail: optimum stops at the prefix.
        r = gotoh_extend(encode("AAAATTTT"), encode("AAAACCCC"), scheme)
        assert r.score == 4
        assert (r.end_i, r.end_j) == (4, 4)

    def test_gap_crossing_pays_off(self):
        scheme = unit_scheme(match=10, mismatch=-10, gap_open=2, gap_extend=1,
                             ydrop=10**6)
        # Query has a 2-base deletion: AAAA|GG|CCCC vs AAAACCCC.
        r = gotoh_extend(encode("AAAAGGCCCC"), encode("AAAACCCC"), scheme)
        # 8 matches (80) minus open+2*extend (4) = 76.
        assert r.score == 76
        assert r.alignment.ops == (("M", 4), ("D", 2), ("M", 4))

    def test_affine_prefers_one_long_gap(self):
        scheme = unit_scheme(match=10, mismatch=-30, gap_open=5, gap_extend=1,
                             ydrop=10**6)
        # Two separate 1-gaps would cost 2*(5+1)=12; one 2-gap costs 5+2=7.
        t = encode("AAGGAA")
        q = encode("AAAA")
        r = gotoh_extend(t, q, scheme)
        assert r.score == 40 - 7
        assert r.alignment.ops == (("M", 2), ("D", 2), ("M", 2))

    def test_leading_gap_allowed(self):
        scheme = unit_scheme(match=10, mismatch=-10, gap_open=1, gap_extend=1,
                             ydrop=10**6)
        # Query starts 1 base into the target.
        r = gotoh_extend(encode("GAAAA"), encode("AAAA"), scheme)
        assert r.score == 40 - 2
        assert r.alignment.ops == (("D", 1), ("M", 4))


class TestMatrices:
    def test_shapes(self, scheme):
        S, I, D, TB = gotoh_matrices(encode("ACG"), encode("AC"), scheme)
        assert S.shape == I.shape == D.shape == TB.shape == (4, 3)

    def test_origin(self, scheme):
        S, I, D, _ = gotoh_matrices(encode("A"), encode("A"), scheme)
        assert S[0, 0] == 0
        assert I[0, 0] == NEG_INF
        assert D[0, 0] == NEG_INF

    def test_first_row_is_insertion_ladder(self, scheme):
        S, I, _, _ = gotoh_matrices(encode(""), encode("AAAA"), scheme)
        # I[0, j] = -(open + j*extend) = -(2 + j).
        assert S[0, 1] == -3
        assert S[0, 2] == -4
        assert S[0, 3] == -5

    def test_recurrence_spot_check(self, scheme):
        t, q = encode("AC"), encode("AC")
        S, I, D, _ = gotoh_matrices(t, q, scheme)
        assert S[1, 1] == 1  # match A/A
        assert S[2, 2] == 2  # match C/C on top

    def test_score_cross_consistency(self, scheme, rng):
        # S must always equal max of its three inputs.
        t = rng.integers(0, 4, size=12).astype(np.uint8)
        q = rng.integers(0, 4, size=9).astype(np.uint8)
        S, I, D, _ = gotoh_matrices(t, q, scheme)
        sub = scheme.substitution
        for i in range(1, 13):
            for j in range(1, 10):
                diag = S[i - 1, j - 1] + sub[t[i - 1], q[j - 1]]
                assert S[i, j] == max(diag, I[i, j], D[i, j])


class TestTieBreak:
    def test_prefers_smallest_antidiagonal(self):
        scheme = unit_scheme(match=1, mismatch=-1, gap_open=10, gap_extend=10,
                             ydrop=10**6)
        # AA vs AATT: score 2 at (2,2); later cells can only tie or worse.
        r = gotoh_extend(encode("AATT"), encode("AACC"), scheme)
        assert (r.end_i, r.end_j) == (2, 2)

    def test_alignment_rescores(self, scheme, rng):
        for _ in range(20):
            t = rng.integers(0, 4, size=int(rng.integers(1, 25))).astype(np.uint8)
            q = rng.integers(0, 4, size=int(rng.integers(1, 25))).astype(np.uint8)
            r = gotoh_extend(t, q, scheme)
            assert r.alignment.rescore(t, q, scheme) == r.score
