"""Unit tests for packed traceback and the traceback walk."""

import numpy as np
import pytest

from repro.align import pack, walk_traceback
from repro.align.traceback import (
    D_EXTEND_BIT,
    I_EXTEND_BIT,
    S_DIAG,
    S_FROM_D,
    S_FROM_I,
    S_ORIGIN,
)


class TestPack:
    def test_choice_bits(self):
        out = pack(np.array([S_DIAG, S_FROM_I, S_FROM_D, S_ORIGIN]),
                   np.zeros(4, bool), np.zeros(4, bool))
        assert out.tolist() == [0, 1, 2, 3]

    def test_extend_bits(self):
        out = pack(np.array([S_FROM_I]), np.array([True]), np.array([True]))
        assert int(out[0]) & I_EXTEND_BIT
        assert int(out[0]) & D_EXTEND_BIT

    def test_choice_masked(self):
        out = pack(np.array([7]), np.array([False]), np.array([False]))
        assert int(out[0]) == 3  # only low 2 bits survive


def _tb(rows):
    return np.array(rows, dtype=np.uint8)


class TestWalk:
    def test_pure_diagonal(self):
        tb = np.full((3, 3), S_DIAG, dtype=np.uint8)
        tb[0, 0] = S_ORIGIN
        assert walk_traceback(tb, 2, 2) == (("M", 2),)

    def test_origin_immediately(self):
        tb = _tb([[S_ORIGIN]])
        assert walk_traceback(tb, 0, 0) == ()

    def test_insertion_run(self):
        # Cells (0,1) and (0,2): I, with (0,2) extending.
        tb = np.zeros((1, 3), dtype=np.uint8)
        tb[0, 0] = S_ORIGIN
        tb[0, 1] = S_FROM_I  # opened here
        tb[0, 2] = S_FROM_I | I_EXTEND_BIT
        assert walk_traceback(tb, 0, 2) == (("I", 2),)

    def test_deletion_run(self):
        tb = np.zeros((3, 1), dtype=np.uint8)
        tb[0, 0] = S_ORIGIN
        tb[1, 0] = S_FROM_D
        tb[2, 0] = S_FROM_D | D_EXTEND_BIT
        assert walk_traceback(tb, 2, 0) == (("D", 2),)

    def test_mixed_path(self):
        # M, then I, then M: target len 2, query len 3.
        tb = np.zeros((3, 4), dtype=np.uint8)
        tb[0, 0] = S_ORIGIN
        tb[1, 1] = S_DIAG
        tb[1, 2] = S_FROM_I
        tb[2, 3] = S_DIAG
        assert walk_traceback(tb, 2, 3) == (("M", 1), ("I", 1), ("M", 1))

    def test_escape_left_raises(self):
        # A diagonal move from column 0 is illegal.
        tb = np.full((2, 2), S_DIAG, dtype=np.uint8)
        tb[0, 0] = S_ORIGIN
        tb[1, 0] = S_DIAG
        with pytest.raises(ValueError):
            walk_traceback(tb, 1, 0)

    def test_insertion_at_column_zero_raises(self):
        tb = np.zeros((2, 1), dtype=np.uint8)
        tb[0, 0] = S_ORIGIN
        tb[1, 0] = S_FROM_I  # insertion claimed at column 0
        with pytest.raises(ValueError):
            walk_traceback(tb, 1, 0)

    def test_end_out_of_bounds(self):
        tb = np.zeros((2, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            walk_traceback(tb, 5, 0)

    def test_nonterminating_raises(self):
        # An I-extension loop at (0, 0) can never finish.
        tb = np.zeros((1, 2), dtype=np.uint8)
        tb[0, 0] = S_DIAG  # claims a diagonal move from the corner
        tb[0, 1] = S_DIAG
        with pytest.raises(ValueError):
            walk_traceback(tb, 0, 1)
