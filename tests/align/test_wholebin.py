"""Equivalence suite for the whole-bin lockstep engine.

:func:`repro.align.wholebin_wavefront_extend` advances an entire task set
as one arena-backed SoA block, sweeping rows in cache tiles that each
mask their own dead lanes.  The contract is the batched engine's: results
bit-identical to the scalar cyclic-buffer engine in every mode, at every
tile size, under forced dtypes and any compaction threshold.
"""

import numpy as np
import pytest

from repro.align import (
    batch_wavefront_extend,
    wavefront_extend,
    wholebin_wavefront_extend,
)

from .test_batch import (
    ENGINE_MODES,
    _assert_results_identical,
    _mixed_extent_pairs,
    _random_pairs,
)


class TestScalarEquivalence:
    @pytest.mark.parametrize("mode", ENGINE_MODES)
    @pytest.mark.parametrize("seed", [3, 17])
    def test_bit_identical_to_scalar(self, bench_scheme, mode, seed):
        pairs = _random_pairs(seed, 40)
        got = wholebin_wavefront_extend(pairs, bench_scheme, **mode)
        assert len(got) == len(pairs)
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(g, wavefront_extend(t, q, bench_scheme, **mode))

    @pytest.mark.parametrize("tile_rows", [1, 3, 17, 10_000])
    def test_tile_rows_invariance(self, bench_scheme, tile_rows):
        """Row tiling is pure locality: any tile size (single-row tiles,
        awkward strides, one tile for everything) gives the same results."""
        pairs = _random_pairs(5, 50)
        ref = wholebin_wavefront_extend(
            pairs, bench_scheme, eager_tile=16, presorted=True
        )
        got = wholebin_wavefront_extend(
            pairs, bench_scheme, eager_tile=16, presorted=True, tile_rows=tile_rows
        )
        for a, b in zip(ref, got):
            _assert_results_identical(a, b)

    def test_tile_rows_env_override(self, bench_scheme, monkeypatch):
        monkeypatch.setenv("REPRO_WHOLEBIN_TILE_ROWS", "2")
        pairs = _random_pairs(7, 30)
        got = wholebin_wavefront_extend(pairs, bench_scheme, traceback=True)
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(
                g, wavefront_extend(t, q, bench_scheme, traceback=True)
            )

    def test_invalid_tile_env_falls_back(self, bench_scheme, monkeypatch):
        monkeypatch.setenv("REPRO_WHOLEBIN_TILE_ROWS", "zero?")
        pairs = _random_pairs(9, 10)
        got = wholebin_wavefront_extend(pairs, bench_scheme)
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(g, wavefront_extend(t, q, bench_scheme))

    def test_agrees_with_batched_engine(self, bench_scheme):
        """Same sweep core, different composition: whole-bin and chunked
        lockstep must agree on everything, including stats."""
        pairs = _random_pairs(13, 60)
        chunked = batch_wavefront_extend(
            pairs, bench_scheme, traceback=True, batch_size=8
        )
        whole = wholebin_wavefront_extend(pairs, bench_scheme, traceback=True)
        for a, b in zip(chunked, whole):
            _assert_results_identical(a, b)

    def test_empty_and_degenerate(self, bench_scheme):
        assert wholebin_wavefront_extend([], bench_scheme) == []
        empty = np.zeros(0, dtype=np.uint8)
        one = np.ones(1, dtype=np.uint8)
        got = wholebin_wavefront_extend(
            [(empty, empty), (one, empty), (empty, one)], bench_scheme, tile_rows=1
        )
        for (t, q), g in zip([(empty, empty), (one, empty), (empty, one)], got):
            _assert_results_identical(g, wavefront_extend(t, q, bench_scheme))

    def test_bad_tile_rows(self, bench_scheme):
        with pytest.raises(ValueError):
            wholebin_wavefront_extend(
                _random_pairs(1, 2), bench_scheme, tile_rows=0
            )


class TestDtypeAndCompaction:
    @pytest.mark.parametrize("dtype", ["int32", "int64"])
    def test_forced_dtypes_bit_identical(self, bench_scheme, dtype):
        pairs = _random_pairs(59, 30)
        got = wholebin_wavefront_extend(
            pairs, bench_scheme, eager_tile=16, score_dtype=dtype, tile_rows=4
        )
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(
                g, wavefront_extend(t, q, bench_scheme, eager_tile=16)
            )

    @pytest.mark.parametrize("threshold", ["0.01", "5.0"])
    def test_compaction_thresholds(self, bench_scheme, monkeypatch, threshold):
        """Mixed extents retire most rows early; tiling + tombstones +
        compaction must stay invisible at any threshold."""
        monkeypatch.setenv("REPRO_BATCH_COMPACT_THRESHOLD", threshold)
        pairs = _mixed_extent_pairs(31)
        got = wholebin_wavefront_extend(
            pairs, bench_scheme, eager_tile=8, tile_rows=5
        )
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(
                g, wavefront_extend(t, q, bench_scheme, eager_tile=8)
            )


class TestSweepLedger:
    def test_sweep_counters_recorded(self, bench_scheme):
        """The sweep ledger must account every executed tile sweep: steps,
        tiles, slab cells and the live subset (masked fraction <= 1)."""
        from repro import obs
        from repro.obs import MetricsRegistry

        registry, _ = obs.enable(MetricsRegistry())
        try:
            wholebin_wavefront_extend(
                _random_pairs(3, 20), bench_scheme, eager_tile=8, tile_rows=4
            )
            steps = registry.counter("repro_batch_sweep_steps_total").value()
            tiles = registry.counter("repro_batch_sweep_tiles_total").value()
            slab = registry.counter("repro_batch_sweep_slab_cells_total").value()
            live = registry.counter("repro_batch_sweep_live_cells_total").value()
            assert steps >= 1
            assert tiles >= steps  # several tiles per step at tile_rows=4
            assert 0 < live <= slab
        finally:
            obs.disable()
