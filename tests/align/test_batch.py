"""Property-style equivalence suite for the batched wavefront engine.

The batched struct-of-arrays engine must be *bit-identical* to the scalar
cyclic-buffer engine in every mode (inspector, eager tile, full traceback,
unpruned), and therefore transitively agree with the row-wise
``ydrop_extend`` reference wherever the scalar engine does.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.align import batch_wavefront_extend, wavefront_extend, ydrop_extend
from repro.align.wavefront import (
    INT32_SAFE_DRIFT,
    max_step_penalty,
    pick_score_dtype,
)
from repro.genome import mutate, random_codes


def _random_pairs(seed: int, count: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """A mixed bag of extension problems: homologous cores of assorted
    lengths/divergences with random flanks, plus degenerate edge cases."""
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        core = int(rng.integers(0, 260))
        flank = int(rng.integers(0, 350))
        base = random_codes(rng, core)
        q_core = mutate(
            base,
            rng,
            divergence=float(rng.uniform(0.0, 0.25)),
            indel_rate=float(rng.uniform(0.0, 0.02)),
        )
        pairs.append(
            (
                np.concatenate([base, random_codes(rng, flank)]),
                np.concatenate([q_core, random_codes(rng, flank)]),
            )
        )
    empty = np.zeros(0, dtype=np.uint8)
    pairs += [
        (empty, empty),
        (random_codes(rng, 7), empty),
        (empty, random_codes(rng, 7)),
        (random_codes(rng, 1), random_codes(rng, 1)),
    ]
    return pairs


def _assert_results_identical(got, ref):
    assert (got.score, got.end_i, got.end_j) == (ref.score, ref.end_i, ref.end_j)
    assert got.eager_hit == ref.eager_hit
    assert got.ops == ref.ops
    assert got.stats == ref.stats


ENGINE_MODES = [
    pytest.param({"eager_tile": 0}, id="inspector"),
    pytest.param({"eager_tile": 16}, id="eager-tile"),
    pytest.param({"traceback": True}, id="executor-traceback"),
    pytest.param({"eager_tile": 8, "prune": False}, id="unpruned"),
]


class TestScalarEquivalence:
    @pytest.mark.parametrize("mode", ENGINE_MODES)
    @pytest.mark.parametrize("seed", [3, 17])
    def test_bit_identical_to_scalar(self, bench_scheme, mode, seed):
        pairs = _random_pairs(seed, 40)
        got = batch_wavefront_extend(pairs, bench_scheme, **mode)
        assert len(got) == len(pairs)
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(g, wavefront_extend(t, q, bench_scheme, **mode))

    def test_unit_scheme_exact_mode(self, exact_scheme):
        """With pruning effectively disabled the full matrix is explored;
        the batch engine must still match cell for cell."""
        pairs = _random_pairs(23, 10)
        got = batch_wavefront_extend(pairs, exact_scheme, eager_tile=4)
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(
                g, wavefront_extend(t, q, exact_scheme, eager_tile=4)
            )

    def test_batch_size_invariance(self, bench_scheme):
        """Chunking the batch must not change any result (lockstep batches
        are independent)."""
        pairs = _random_pairs(5, 60)
        whole = batch_wavefront_extend(pairs, bench_scheme, eager_tile=16)
        for size in (1, 7, 64):
            chunked = batch_wavefront_extend(
                pairs, bench_scheme, eager_tile=16, batch_size=size
            )
            for a, b in zip(whole, chunked):
                _assert_results_identical(a, b)

    def test_empty_batch(self, bench_scheme):
        assert batch_wavefront_extend([], bench_scheme) == []

    def test_bad_batch_size(self, bench_scheme):
        with pytest.raises(ValueError):
            batch_wavefront_extend(_random_pairs(1, 2), bench_scheme, batch_size=0)


class TestReferenceAgreement:
    def test_matches_ydrop_reference(self, bench_scheme):
        """Transitive contract: batch == scalar wavefront == row-wise y-drop
        reference on the optimum (same conservative pruning guarantees)."""
        pairs = _random_pairs(41, 30)
        got = batch_wavefront_extend(pairs, bench_scheme)
        for (t, q), g in zip(pairs, got):
            ref = ydrop_extend(t, q, bench_scheme)
            assert (g.score, g.end_i, g.end_j) == (ref.score, ref.end_i, ref.end_j)

    def test_matches_ydrop_reference_unit_scheme(self, small_scheme):
        pairs = _random_pairs(43, 20)
        got = batch_wavefront_extend(pairs, small_scheme)
        for (t, q), g in zip(pairs, got):
            ref = ydrop_extend(t, q, small_scheme)
            assert (g.score, g.end_i, g.end_j) == (ref.score, ref.end_i, ref.end_j)


class TestEagerTileSemantics:
    def test_eager_hits_walkable(self, bench_scheme):
        """Every eager hit must carry an alignment whose ops rescore to the
        reported score (the tile traceback bytes are identical to scalar)."""
        pairs = _random_pairs(11, 50)
        got = batch_wavefront_extend(pairs, bench_scheme, eager_tile=16)
        hits = [g for g in got if g.eager_hit]
        assert hits, "workload should produce some eager hits"
        for g in hits:
            assert g.ops is not None
            assert g.end_i <= 16 and g.end_j <= 16

    def test_traceback_ops_identical(self, bench_scheme):
        pairs = _random_pairs(29, 25)
        got = batch_wavefront_extend(pairs, bench_scheme, traceback=True)
        for (t, q), g in zip(pairs, got):
            ref = wavefront_extend(t, q, bench_scheme, traceback=True)
            assert g.ops == ref.ops


class TestScoreDtypePromotion:
    """int32 score slabs must be a pure bandwidth optimisation: the checked
    promotion picks int32 only when provably exact, and both dtypes produce
    bit-identical sweeps."""

    def test_promotion_decision_flips_at_the_bound(self, bench_scheme):
        pen = max_step_penalty(bench_scheme)
        edge_span = (INT32_SAFE_DRIFT - int(bench_scheme.ydrop)) // pen - 2
        assert pick_score_dtype(bench_scheme, 1_000) == np.dtype(np.int32)
        assert pick_score_dtype(bench_scheme, edge_span) == np.dtype(np.int32)
        assert pick_score_dtype(bench_scheme, edge_span + 1) == np.dtype(np.int64)
        # Without pruning the y-drop magnitude leaves the bound.
        assert pick_score_dtype(
            bench_scheme, edge_span + 1, prune=False
        ) == np.dtype(np.int32)

    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_forced_dtypes_bit_identical(self, bench_scheme, mode):
        """Property: near or far from the bound, the int32 and int64 paths
        agree with each other and with the scalar engine on everything."""
        pairs = _random_pairs(59, 30)
        i32 = batch_wavefront_extend(
            pairs, bench_scheme, score_dtype="int32", **mode
        )
        i64 = batch_wavefront_extend(
            pairs, bench_scheme, score_dtype="int64", **mode
        )
        for a, b in zip(i32, i64):
            _assert_results_identical(a, b)
        for (t, q), g in zip(pairs, i32):
            _assert_results_identical(g, wavefront_extend(t, q, bench_scheme, **mode))

    def test_auto_promotes_to_int64_when_unsafe(self, bench_scheme):
        """A scheme whose per-step penalty blows the int32 budget at tiny
        spans must auto-promote — and still match the scalar engine."""
        huge = replace(bench_scheme, gap_open=INT32_SAFE_DRIFT)
        assert pick_score_dtype(huge, 10) == np.dtype(np.int64)
        pairs = _random_pairs(61, 8)
        got = batch_wavefront_extend(pairs, huge, eager_tile=8)
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(g, wavefront_extend(t, q, huge, eager_tile=8))

    def test_bad_score_dtype_rejected(self, bench_scheme):
        with pytest.raises(ValueError):
            batch_wavefront_extend(
                _random_pairs(1, 2), bench_scheme, score_dtype="float32"
            )


def _mixed_extent_pairs(seed: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """Wildly mixed extents: most tasks die within a few diagonals while a
    few run deep, so the dead-row fraction crosses any compaction threshold
    mid-run."""
    rng = np.random.default_rng(seed)
    pairs = []
    for k in range(28):
        core = 400 if k % 7 == 0 else int(rng.integers(2, 12))
        base = random_codes(rng, core)
        q_core = mutate(base, rng, divergence=0.05, indel_rate=0.01)
        flank = random_codes(rng, 60)
        pairs.append(
            (np.concatenate([base, flank]), np.concatenate([q_core, flank]))
        )
    return pairs


class TestDeferredCompaction:
    """Tombstoned retirement + threshold-driven compaction must be purely
    internal: any threshold produces the scalar engine's exact results."""

    @pytest.mark.parametrize("threshold", ["0.01", "0.25", "5.0"])
    def test_bit_identical_across_thresholds(
        self, bench_scheme, monkeypatch, threshold
    ):
        monkeypatch.setenv("REPRO_BATCH_COMPACT_THRESHOLD", threshold)
        pairs = _mixed_extent_pairs(31)
        got = batch_wavefront_extend(pairs, bench_scheme, eager_tile=8)
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(g, wavefront_extend(t, q, bench_scheme, eager_tile=8))

    def test_compactions_happen_and_are_observable(self, bench_scheme, monkeypatch):
        from repro import obs
        from repro.obs import MetricsRegistry

        monkeypatch.setenv("REPRO_BATCH_COMPACT_THRESHOLD", "0.01")
        registry, _ = obs.enable(MetricsRegistry())
        try:
            batch_wavefront_extend(_mixed_extent_pairs(33), bench_scheme, eager_tile=8)
            assert registry.counter("repro_batch_compactions_total").value() >= 1
            assert registry.counter("repro_batch_arena_acquires_total").value() >= 1
        finally:
            obs.disable()

    def test_invalid_threshold_falls_back_to_default(self, bench_scheme, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_COMPACT_THRESHOLD", "not-a-number")
        pairs = _mixed_extent_pairs(37)
        got = batch_wavefront_extend(pairs, bench_scheme, eager_tile=8)
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(g, wavefront_extend(t, q, bench_scheme, eager_tile=8))
