"""Property-style equivalence suite for the batched wavefront engine.

The batched struct-of-arrays engine must be *bit-identical* to the scalar
cyclic-buffer engine in every mode (inspector, eager tile, full traceback,
unpruned), and therefore transitively agree with the row-wise
``ydrop_extend`` reference wherever the scalar engine does.
"""

import numpy as np
import pytest

from repro.align import batch_wavefront_extend, wavefront_extend, ydrop_extend
from repro.genome import mutate, random_codes


def _random_pairs(seed: int, count: int) -> list[tuple[np.ndarray, np.ndarray]]:
    """A mixed bag of extension problems: homologous cores of assorted
    lengths/divergences with random flanks, plus degenerate edge cases."""
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        core = int(rng.integers(0, 260))
        flank = int(rng.integers(0, 350))
        base = random_codes(rng, core)
        q_core = mutate(
            base,
            rng,
            divergence=float(rng.uniform(0.0, 0.25)),
            indel_rate=float(rng.uniform(0.0, 0.02)),
        )
        pairs.append(
            (
                np.concatenate([base, random_codes(rng, flank)]),
                np.concatenate([q_core, random_codes(rng, flank)]),
            )
        )
    empty = np.zeros(0, dtype=np.uint8)
    pairs += [
        (empty, empty),
        (random_codes(rng, 7), empty),
        (empty, random_codes(rng, 7)),
        (random_codes(rng, 1), random_codes(rng, 1)),
    ]
    return pairs


def _assert_results_identical(got, ref):
    assert (got.score, got.end_i, got.end_j) == (ref.score, ref.end_i, ref.end_j)
    assert got.eager_hit == ref.eager_hit
    assert got.ops == ref.ops
    assert got.stats == ref.stats


ENGINE_MODES = [
    pytest.param({"eager_tile": 0}, id="inspector"),
    pytest.param({"eager_tile": 16}, id="eager-tile"),
    pytest.param({"traceback": True}, id="executor-traceback"),
    pytest.param({"eager_tile": 8, "prune": False}, id="unpruned"),
]


class TestScalarEquivalence:
    @pytest.mark.parametrize("mode", ENGINE_MODES)
    @pytest.mark.parametrize("seed", [3, 17])
    def test_bit_identical_to_scalar(self, bench_scheme, mode, seed):
        pairs = _random_pairs(seed, 40)
        got = batch_wavefront_extend(pairs, bench_scheme, **mode)
        assert len(got) == len(pairs)
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(g, wavefront_extend(t, q, bench_scheme, **mode))

    def test_unit_scheme_exact_mode(self, exact_scheme):
        """With pruning effectively disabled the full matrix is explored;
        the batch engine must still match cell for cell."""
        pairs = _random_pairs(23, 10)
        got = batch_wavefront_extend(pairs, exact_scheme, eager_tile=4)
        for (t, q), g in zip(pairs, got):
            _assert_results_identical(
                g, wavefront_extend(t, q, exact_scheme, eager_tile=4)
            )

    def test_batch_size_invariance(self, bench_scheme):
        """Chunking the batch must not change any result (lockstep batches
        are independent)."""
        pairs = _random_pairs(5, 60)
        whole = batch_wavefront_extend(pairs, bench_scheme, eager_tile=16)
        for size in (1, 7, 64):
            chunked = batch_wavefront_extend(
                pairs, bench_scheme, eager_tile=16, batch_size=size
            )
            for a, b in zip(whole, chunked):
                _assert_results_identical(a, b)

    def test_empty_batch(self, bench_scheme):
        assert batch_wavefront_extend([], bench_scheme) == []

    def test_bad_batch_size(self, bench_scheme):
        with pytest.raises(ValueError):
            batch_wavefront_extend(_random_pairs(1, 2), bench_scheme, batch_size=0)


class TestReferenceAgreement:
    def test_matches_ydrop_reference(self, bench_scheme):
        """Transitive contract: batch == scalar wavefront == row-wise y-drop
        reference on the optimum (same conservative pruning guarantees)."""
        pairs = _random_pairs(41, 30)
        got = batch_wavefront_extend(pairs, bench_scheme)
        for (t, q), g in zip(pairs, got):
            ref = ydrop_extend(t, q, bench_scheme)
            assert (g.score, g.end_i, g.end_j) == (ref.score, ref.end_i, ref.end_j)

    def test_matches_ydrop_reference_unit_scheme(self, small_scheme):
        pairs = _random_pairs(43, 20)
        got = batch_wavefront_extend(pairs, small_scheme)
        for (t, q), g in zip(pairs, got):
            ref = ydrop_extend(t, q, small_scheme)
            assert (g.score, g.end_i, g.end_j) == (ref.score, ref.end_i, ref.end_j)


class TestEagerTileSemantics:
    def test_eager_hits_walkable(self, bench_scheme):
        """Every eager hit must carry an alignment whose ops rescore to the
        reported score (the tile traceback bytes are identical to scalar)."""
        pairs = _random_pairs(11, 50)
        got = batch_wavefront_extend(pairs, bench_scheme, eager_tile=16)
        hits = [g for g in got if g.eager_hit]
        assert hits, "workload should produce some eager hits"
        for g in hits:
            assert g.ops is not None
            assert g.end_i <= 16 and g.end_j <= 16

    def test_traceback_ops_identical(self, bench_scheme):
        pairs = _random_pairs(29, 25)
        got = batch_wavefront_extend(pairs, bench_scheme, traceback=True)
        for (t, q), g in zip(pairs, got):
            ref = wavefront_extend(t, q, bench_scheme, traceback=True)
            assert g.ops == ref.ops
