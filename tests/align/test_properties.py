"""Cross-cutting property-based tests of the alignment machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align import Alignment, merge_ops, walk_traceback
from repro.align.traceback import (
    D_EXTEND_BIT,
    I_EXTEND_BIT,
    S_DIAG,
    S_FROM_D,
    S_FROM_I,
    S_ORIGIN,
)
from repro.align import gotoh_extend, wavefront_extend, ydrop_extend
from repro.genome import encode
from repro.scoring import unit_scheme

_ops_strategy = st.lists(
    st.tuples(st.sampled_from("MID"), st.integers(0, 5)), max_size=12
)


class TestMergeOpsProperties:
    @given(_ops_strategy)
    def test_no_adjacent_duplicates(self, ops):
        merged = merge_ops(ops)
        for a, b in zip(merged, merged[1:]):
            assert a[0] != b[0]

    @given(_ops_strategy)
    def test_totals_preserved(self, ops):
        merged = merge_ops(ops)
        for op in "MID":
            assert sum(n for o, n in ops if o == op) == sum(
                n for o, n in merged if o == op
            )

    @given(_ops_strategy)
    def test_idempotent(self, ops):
        merged = merge_ops(ops)
        assert merge_ops(list(merged)) == merged


def _tb_from_script(ops):
    """Build a packed traceback matrix realising a given edit script."""
    m = sum(n for o, n in ops if o in "MD")
    n = sum(n for o, n in ops if o in "MI")
    tb = np.zeros((m + 1, n + 1), dtype=np.uint8)
    tb[0, 0] = S_ORIGIN
    i = j = 0
    for op, length in ops:
        for k in range(length):
            if op == "M":
                i += 1
                j += 1
                tb[i, j] = S_DIAG
            elif op == "I":
                j += 1
                tb[i, j] = S_FROM_I | (I_EXTEND_BIT if k > 0 else 0)
            else:
                i += 1
                tb[i, j] = S_FROM_D | (D_EXTEND_BIT if k > 0 else 0)
    return tb, i, j


# A valid local-alignment script: starts and ends with M runs, gaps never
# adjacent (the affine DP never emits I directly followed by D).
_script = st.lists(
    st.tuples(st.sampled_from("ID"), st.integers(1, 4)), max_size=5
).map(
    lambda gaps: [
        piece
        for gap in gaps
        for piece in (("M", 2), (gap[0], gap[1]))
    ]
    + [("M", 1)]
)


class TestTracebackRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(_script)
    def test_walk_recovers_script(self, ops):
        tb, end_i, end_j = _tb_from_script(ops)
        assert walk_traceback(tb, end_i, end_j) == merge_ops(ops)


class TestEngineTriangleEquivalence:
    """All three engines must agree pairwise on arbitrary inputs."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=20),
        st.lists(st.integers(0, 3), min_size=1, max_size=20),
        st.integers(1, 4),
        st.integers(1, 3),
    )
    def test_all_engines_agree(self, t_list, q_list, gap_open, gap_extend):
        t = np.array(t_list, dtype=np.uint8)
        q = np.array(q_list, dtype=np.uint8)
        scheme = unit_scheme(
            match=3, mismatch=-2, gap_open=gap_open, gap_extend=gap_extend,
            ydrop=10**6,
        )
        g = gotoh_extend(t, q, scheme)
        w = wavefront_extend(t, q, scheme, prune=False, traceback=True)
        y = ydrop_extend(t, q, scheme, traceback=True)
        assert g.score == w.score == y.score
        assert (g.end_i, g.end_j) == (w.end_i, w.end_j) == (y.end_i, y.end_j)
        assert g.alignment.ops == w.ops == y.ops


class TestNBaseHandling:
    def test_n_bases_score_as_mismatch(self):
        scheme = unit_scheme(ydrop=10**6)
        clean = gotoh_extend(encode("ACGTACGT"), encode("ACGTACGT"), scheme)
        dirty = gotoh_extend(encode("ACGNACGT"), encode("ACGTACGT"), scheme)
        assert dirty.score < clean.score

    def test_pipeline_tolerates_n_runs(self, bench_scheme):
        t = encode("ACGT" * 20 + "N" * 30 + "ACGT" * 20)
        q = encode("ACGT" * 20 + "N" * 30 + "ACGT" * 20)
        w = wavefront_extend(t, q, bench_scheme, traceback=True)
        y = ydrop_extend(t, q, bench_scheme, traceback=True)
        assert w.score == y.score
        assert w.score > 0

    def test_alignment_identity_counts_n_as_match_of_itself(self):
        # identity() compares codes; N==N counts as equal.
        t = encode("NN")
        a = Alignment(0, 2, 0, 2, score=0, ops=(("M", 2),))
        assert a.identity(t, t) == 1.0


class TestRescoreProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 3), min_size=1, max_size=25),
        st.lists(st.integers(0, 3), min_size=1, max_size=25),
    )
    def test_traceback_rescores_exactly(self, t_list, q_list):
        t = np.array(t_list, dtype=np.uint8)
        q = np.array(q_list, dtype=np.uint8)
        scheme = unit_scheme(match=2, mismatch=-3, gap_open=3, gap_extend=1,
                             ydrop=10**6)
        y = ydrop_extend(t, q, scheme, traceback=True)
        assert y.alignment().rescore(t, q, scheme) == y.score
