"""Unit tests for the row-wise y-drop engine (LASTZ reference)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align import diag_width_profile, gotoh_extend, ydrop_extend
from repro.genome import encode, mutate, random_codes
from repro.scoring import default_scheme, unit_scheme

from ..conftest import make_homologous_pair

_codes = st.lists(st.integers(0, 3), min_size=1, max_size=24).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestAgainstGotoh:
    @settings(max_examples=120, deadline=None)
    @given(_codes, _codes)
    def test_exact_equivalence_without_pruning(self, t, q):
        scheme = unit_scheme(ydrop=10**6)
        g = gotoh_extend(t, q, scheme)
        y = ydrop_extend(t, q, scheme, traceback=True)
        assert y.score == g.score
        assert (y.end_i, y.end_j) == (g.end_i, g.end_j)
        assert y.ops == g.alignment.ops

    def test_hoxd_equivalence_without_pruning(self, rng):
        scheme = default_scheme(ydrop=10**9)
        for _ in range(30):
            t = rng.integers(0, 4, size=int(rng.integers(1, 40))).astype(np.uint8)
            q = rng.integers(0, 4, size=int(rng.integers(1, 40))).astype(np.uint8)
            g = gotoh_extend(t, q, scheme)
            y = ydrop_extend(t, q, scheme, traceback=True)
            assert (y.score, y.end_i, y.end_j) == (g.score, g.end_i, g.end_j)


class TestPruning:
    def test_terminates_early_on_random(self, rng, bench_scheme):
        t = random_codes(rng, 50_000)
        q = random_codes(rng, 50_000)
        y = ydrop_extend(t, q, bench_scheme)
        # Exploration dies long before the end of the sequences.
        assert y.stats.rows < 5_000
        assert y.score >= 0

    def test_pruned_score_matches_on_homology(self, rng, bench_scheme):
        for _ in range(10):
            t, q = make_homologous_pair(rng)
            full = ydrop_extend(t, q, default_scheme(gap_extend=60, ydrop=10**8))
            pruned = ydrop_extend(t, q, bench_scheme)
            # Pruning may only lose low-scoring outliers, never the optimum
            # of a clean homologous core.
            assert pruned.score == full.score

    def test_smaller_ydrop_explores_less(self, rng):
        t, q = make_homologous_pair(rng)
        small = ydrop_extend(t, q, default_scheme(gap_extend=60, ydrop=600))
        big = ydrop_extend(t, q, default_scheme(gap_extend=60, ydrop=4800))
        assert small.stats.cells < big.stats.cells

    def test_search_space_exceeds_alignment(self, rng, bench_scheme):
        # The paper's key workload property: y-drop explores far beyond the
        # optimal cell.
        base = random_codes(rng, 12)
        t = np.concatenate([base, random_codes(rng, 2000)])
        q = np.concatenate([base.copy(), random_codes(rng, 2000)])
        y = ydrop_extend(t, q, bench_scheme)
        assert y.end_i <= 30
        assert y.stats.rows > 3 * max(y.end_i, 1)


class TestTraceback:
    def test_rescore_matches(self, rng, bench_scheme):
        for _ in range(10):
            t, q = make_homologous_pair(rng)
            y = ydrop_extend(t, q, bench_scheme, traceback=True)
            assert y.alignment().rescore(t, q, bench_scheme) == y.score

    def test_no_traceback_by_default(self, rng, bench_scheme):
        t, q = make_homologous_pair(rng)
        y = ydrop_extend(t, q, bench_scheme)
        assert y.ops is None
        with pytest.raises(ValueError):
            y.alignment()


class TestStats:
    def test_empty_query(self, bench_scheme):
        y = ydrop_extend(encode("ACGT"), encode(""), bench_scheme)
        assert y.score == 0
        assert (y.end_i, y.end_j) == (0, 0)

    def test_empty_target(self, bench_scheme):
        y = ydrop_extend(encode(""), encode("ACGT"), bench_scheme)
        assert y.score == 0
        assert y.stats.rows == 1  # row 0 only

    def test_cells_at_least_rows(self, rng, bench_scheme):
        t, q = make_homologous_pair(rng)
        y = ydrop_extend(t, q, bench_scheme)
        assert y.stats.cells >= y.stats.rows
        assert y.stats.max_row_width >= 1
        assert y.stats.max_antidiag >= y.end_i + y.end_j

    def test_windows_collection(self, rng, bench_scheme):
        t, q = make_homologous_pair(rng)
        y = ydrop_extend(t, q, bench_scheme, collect_windows=True)
        assert y.windows is not None
        assert len(y.windows) == y.stats.rows
        total = sum(r - l for l, r in y.windows)
        assert total == y.stats.cells

    def test_reversed_views_work(self, rng, bench_scheme):
        # Left extensions pass reversed (negative-stride) views.
        t, q = make_homologous_pair(rng)
        fwd = ydrop_extend(t, q, bench_scheme)
        rev = ydrop_extend(t[::-1][::-1], q[::-1][::-1], bench_scheme)
        assert (fwd.score, fwd.end_i, fwd.end_j) == (rev.score, rev.end_i, rev.end_j)


class TestDiagWidthProfile:
    def test_empty(self):
        assert diag_width_profile(()).shape == (0,)

    def test_single_row(self):
        widths = diag_width_profile(((0, 3),))
        assert widths.tolist() == [1, 1, 1]

    def test_two_rows_overlap(self):
        # Row 0 covers diagonals 0..2; row 1 covers diagonals 1+0..1+2.
        widths = diag_width_profile(((0, 3), (0, 3)))
        assert widths.tolist() == [1, 2, 2, 1]

    def test_total_cells_preserved(self, rng, bench_scheme):
        t, q = make_homologous_pair(rng)
        y = ydrop_extend(t, q, bench_scheme, collect_windows=True)
        widths = diag_width_profile(y.windows)
        assert int(widths.sum()) == y.stats.cells
