"""Unit tests for the cyclic-buffer wavefront engine (FastZ kernels)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align import gotoh_extend, wavefront_extend, ydrop_extend
from repro.align.wavefront import WARP_WIDTH
from repro.genome import encode, random_codes
from repro.scoring import default_scheme, unit_scheme

from ..conftest import make_homologous_pair

_codes = st.lists(st.integers(0, 3), min_size=1, max_size=24).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestAgainstGotoh:
    @settings(max_examples=120, deadline=None)
    @given(_codes, _codes)
    def test_bitwise_equivalence_no_prune(self, t, q):
        """The cyclic three-diagonal buffers must reproduce the full matrix
        exactly — scores, end cell, and traceback."""
        scheme = unit_scheme(ydrop=10**6)
        g = gotoh_extend(t, q, scheme)
        w = wavefront_extend(t, q, scheme, prune=False, traceback=True)
        assert w.score == g.score
        assert (w.end_i, w.end_j) == (g.end_i, g.end_j)
        assert w.ops == g.alignment.ops

    def test_hoxd_equivalence(self, rng):
        scheme = default_scheme(ydrop=10**9)
        for _ in range(25):
            t = rng.integers(0, 4, size=int(rng.integers(1, 40))).astype(np.uint8)
            q = rng.integers(0, 4, size=int(rng.integers(1, 40))).astype(np.uint8)
            g = gotoh_extend(t, q, scheme)
            w = wavefront_extend(t, q, scheme, prune=False, traceback=True)
            assert (w.score, w.end_i, w.end_j) == (g.score, g.end_i, g.end_j)
            assert w.ops == g.alignment.ops


class TestAgainstRowEngine:
    def test_pruned_agreement_on_homology(self, rng, bench_scheme):
        """With pruning on, the wavefront finds the same optimum as the
        row engine on homologous inputs (paper: same or longer; on clean
        cores they coincide)."""
        for _ in range(20):
            t, q = make_homologous_pair(rng)
            w = wavefront_extend(t, q, bench_scheme)
            y = ydrop_extend(t, q, bench_scheme)
            assert (w.score, w.end_i, w.end_j) == (y.score, y.end_i, y.end_j)

    def test_pruned_score_never_below_reference(self, rng, bench_scheme):
        for _ in range(30):
            t = random_codes(rng, 300)
            q = random_codes(rng, 300)
            w = wavefront_extend(t, q, bench_scheme)
            y = ydrop_extend(t, q, bench_scheme)
            assert w.score >= 0 and y.score >= 0


class TestEagerTile:
    def test_hit_inside_tile(self, rng, bench_scheme):
        base = random_codes(rng, 12)
        t = np.concatenate([base, random_codes(rng, 500)])
        q = np.concatenate([base.copy(), random_codes(rng, 500)])
        w = wavefront_extend(t, q, bench_scheme, eager_tile=16)
        assert w.eager_hit
        assert w.ops is not None
        assert w.end_i <= 16 and w.end_j <= 16
        assert w.alignment().rescore(t, q, bench_scheme) == w.score

    def test_miss_outside_tile(self, rng, bench_scheme):
        base = random_codes(rng, 60)
        t = np.concatenate([base, random_codes(rng, 500)])
        q = np.concatenate([base.copy(), random_codes(rng, 500)])
        w = wavefront_extend(t, q, bench_scheme, eager_tile=16)
        assert not w.eager_hit
        assert w.ops is None
        assert w.end_i > 16

    def test_tile_boundary_is_inclusive(self, bench_scheme):
        # A 16-base perfect match ends exactly at cell (16, 16).
        base = encode("ACGTACGTACGTACGT")
        w = wavefront_extend(base, base.copy(), bench_scheme, eager_tile=16)
        assert (w.end_i, w.end_j) == (16, 16)
        assert w.eager_hit

    def test_zero_tile_disables(self, rng, bench_scheme):
        base = random_codes(rng, 8)
        w = wavefront_extend(base, base.copy(), bench_scheme, eager_tile=0)
        assert not w.eager_hit
        assert w.ops is None

    def test_traceback_mode_overrides_tile(self, rng, bench_scheme):
        base = random_codes(rng, 8)
        w = wavefront_extend(
            base, base.copy(), bench_scheme, eager_tile=16, traceback=True
        )
        assert w.ops is not None
        assert not w.eager_hit  # full traceback, not an eager resolution


class TestTrimmedRecompute:
    def test_trimmed_matches_inspection(self, rng, bench_scheme):
        """Executor semantics: recomputing on [0..end] reproduces the
        inspector's optimum with a full traceback."""
        for _ in range(10):
            t, q = make_homologous_pair(rng)
            insp = wavefront_extend(t, q, bench_scheme)
            execu = wavefront_extend(
                t[: insp.end_i], q[: insp.end_j], bench_scheme, traceback=True
            )
            assert (execu.score, execu.end_i, execu.end_j) == (
                insp.score,
                insp.end_i,
                insp.end_j,
            )
            assert execu.alignment().rescore(t, q, bench_scheme) == insp.score


class TestStats:
    def test_warp_step_accounting(self, rng, bench_scheme):
        t, q = make_homologous_pair(rng)
        w = wavefront_extend(t, q, bench_scheme)
        s = w.stats
        assert s.cells >= s.diagonals
        assert s.warp_steps >= s.diagonals
        assert s.warp_steps <= s.cells
        # Strip arithmetic: steps-diagonals == boundary cells by definition.
        assert s.boundary_cells == s.warp_steps - s.diagonals
        assert s.max_width >= 1
        assert s.mean_width == pytest.approx(s.cells / s.diagonals)

    def test_wide_diagonal_spills(self, bench_scheme):
        # Force widths beyond one warp: a long perfect match keeps a narrow
        # band, so use no pruning on a big rectangle instead.
        scheme = unit_scheme(ydrop=10**6)
        t = np.zeros(3 * WARP_WIDTH, dtype=np.uint8)
        q = np.zeros(3 * WARP_WIDTH, dtype=np.uint8)
        w = wavefront_extend(t, q, scheme, prune=False)
        assert w.stats.max_width > WARP_WIDTH
        assert w.stats.boundary_cells > 0

    def test_empty_inputs(self, bench_scheme):
        w = wavefront_extend(encode(""), encode(""), bench_scheme)
        assert w.score == 0
        assert w.stats.diagonals == 1
        assert w.stats.cells == 1

    def test_reversed_views_work(self, rng, bench_scheme):
        t, q = make_homologous_pair(rng)
        rev = wavefront_extend(t[::-1], q[::-1], bench_scheme)
        assert rev.score >= 0  # smoke: negative-stride inputs accepted
