"""Unit tests for two-sided anchor extension."""

import numpy as np
import pytest

from repro.align import extend_anchor, wavefront_extend, ydrop_extend
from repro.genome import mutate, random_codes
from repro.scoring import default_scheme


@pytest.fixture()
def planted(rng):
    """Target/query with one homologous core and the anchor inside it."""
    core = random_codes(rng, 200)
    q_core = mutate(core, rng, divergence=0.05)
    t = np.concatenate([random_codes(rng, 300), core, random_codes(rng, 300)])
    q = np.concatenate([random_codes(rng, 250), q_core, random_codes(rng, 250)])
    anchor_t = 300 + 100
    anchor_q = 250 + 100
    return t, q, anchor_t, anchor_q


class TestExtendAnchor:
    def test_spans_cover_core(self, planted, bench_scheme):
        t, q, at, aq = planted
        ext = extend_anchor(t, q, at, aq, bench_scheme, ydrop_extend)
        assert ext.left.end_i >= 95
        assert ext.right.end_i >= 95
        assert ext.target_span >= 190
        assert ext.extent == max(ext.target_span, ext.query_span)

    def test_score_is_sum_of_sides(self, planted, bench_scheme):
        t, q, at, aq = planted
        ext = extend_anchor(t, q, at, aq, bench_scheme, ydrop_extend)
        assert ext.score == ext.left.score + ext.right.score

    def test_engines_agree(self, planted, bench_scheme):
        t, q, at, aq = planted
        row = extend_anchor(t, q, at, aq, bench_scheme, ydrop_extend)
        wave = extend_anchor(t, q, at, aq, bench_scheme, wavefront_extend)
        assert row.score == wave.score
        assert (row.left.end_i, row.right.end_i) == (
            wave.left.end_i,
            wave.right.end_i,
        )

    def test_combined_alignment_coordinates(self, planted, bench_scheme):
        t, q, at, aq = planted
        ext = extend_anchor(t, q, at, aq, bench_scheme, ydrop_extend, traceback=True)
        alignment = ext.alignment()
        assert alignment.target_start == at - ext.left.end_i
        assert alignment.target_end == at + ext.right.end_i
        assert alignment.query_start == aq - ext.left.end_j
        assert alignment.query_end == aq + ext.right.end_j

    def test_combined_alignment_rescores(self, planted, bench_scheme):
        t, q, at, aq = planted
        ext = extend_anchor(t, q, at, aq, bench_scheme, ydrop_extend, traceback=True)
        alignment = ext.alignment()
        assert alignment.rescore(t, q, bench_scheme) == ext.score

    def test_anchor_at_origin(self, rng, bench_scheme):
        t = random_codes(rng, 100)
        q = random_codes(rng, 100)
        ext = extend_anchor(t, q, 0, 0, bench_scheme, ydrop_extend, traceback=True)
        assert ext.left.end_i == 0 and ext.left.end_j == 0

    def test_anchor_at_end(self, rng, bench_scheme):
        t = random_codes(rng, 100)
        q = random_codes(rng, 100)
        ext = extend_anchor(t, q, 100, 100, bench_scheme, ydrop_extend)
        assert ext.right.end_i == 0 and ext.right.end_j == 0

    def test_anchor_out_of_bounds(self, rng, bench_scheme):
        t = random_codes(rng, 10)
        with pytest.raises(IndexError):
            extend_anchor(t, t, 11, 0, bench_scheme, ydrop_extend)

    def test_combine_requires_traceback(self, planted, bench_scheme):
        t, q, at, aq = planted
        ext = extend_anchor(t, q, at, aq, bench_scheme, ydrop_extend)
        with pytest.raises(ValueError):
            ext.alignment()
