"""LockstepArena semantics: reuse, growth, aliasing, thread-local registry."""

import threading

import numpy as np

from repro.align import (
    LockstepArena,
    batch_wavefront_extend,
    release_thread_arenas,
    thread_arena,
    wavefront_extend,
)
from repro.genome import mutate, random_codes


def _pairs(seed: int, count: int):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        core = random_codes(rng, int(rng.integers(10, 120)))
        q = mutate(core, rng, divergence=0.06, indel_rate=0.01)
        flank = random_codes(rng, 80)
        out.append(
            (np.concatenate([core, flank]), np.concatenate([q, flank]))
        )
    return out


class TestBlockCheckout:
    def test_first_checkout_is_fresh(self):
        arena = LockstepArena()
        view, fresh = arena.block("scores", (2, 4, 8), np.int32)
        assert fresh
        assert view.shape == (2, 4, 8)
        assert arena.allocations == 1

    def test_fitting_checkout_reuses_backing(self):
        arena = LockstepArena()
        first, _ = arena.block("scores", (2, 4, 8), np.int32)
        first[:] = 7
        again, fresh = arena.block("scores", (2, 3, 5), np.int32)
        assert not fresh
        assert (again == 7).all()  # aliases the retained buffer
        assert arena.reuses == 1

    def test_growth_covers_maximum_per_axis(self):
        arena = LockstepArena()
        arena.block("scores", (2, 8, 4), np.int32)
        view, fresh = arena.block("scores", (2, 4, 16), np.int32)
        assert fresh
        assert view.shape == (2, 4, 16)
        # The retained buffer keeps the max of both requests per axis.
        retained, fresh = arena.block("scores", (2, 8, 16), np.int32)
        assert not fresh

    def test_dtype_keys_do_not_thrash(self):
        arena = LockstepArena()
        arena.block("scores", (2, 4, 8), np.int32)
        arena.block("scores", (2, 4, 8), np.int64)
        _, fresh32 = arena.block("scores", (2, 4, 8), np.int32)
        _, fresh64 = arena.block("scores", (2, 4, 8), np.int64)
        assert not fresh32 and not fresh64

    def test_release_drops_storage_keeps_counters(self):
        arena = LockstepArena()
        arena.block("scores", (2, 4, 8), np.int32)
        assert arena.nbytes() > 0
        acquires = arena.acquires
        arena.release()
        assert arena.nbytes() == 0
        assert arena.acquires == acquires


class TestWarmEngineReuse:
    def test_warm_arena_runs_allocation_free(self, bench_scheme):
        """Second identical batch through a warm arena must not allocate."""
        arena = LockstepArena()
        pairs = _pairs(3, 50)
        first = batch_wavefront_extend(pairs, bench_scheme, eager_tile=16, arena=arena)
        allocs = arena.allocations
        second = batch_wavefront_extend(pairs, bench_scheme, eager_tile=16, arena=arena)
        assert arena.allocations == allocs
        for a, b in zip(first, second):
            assert (a.score, a.end_i, a.end_j, a.stats) == (
                b.score, b.end_i, b.end_j, b.stats,
            )

    def test_recycled_slabs_stay_bit_identical(self, bench_scheme):
        """A warm (dirty) arena must never leak state between batches."""
        arena = LockstepArena()
        for seed in (5, 11, 19):
            pairs = _pairs(seed, 30)
            got = batch_wavefront_extend(
                pairs, bench_scheme, eager_tile=8, arena=arena
            )
            for (t, q), g in zip(pairs, got):
                ref = wavefront_extend(t, q, bench_scheme, eager_tile=8)
                assert (g.score, g.end_i, g.end_j) == (ref.score, ref.end_i, ref.end_j)
                assert g.stats == ref.stats


class TestThreadArenaRegistry:
    def test_same_key_same_arena(self):
        try:
            assert thread_arena("t1") is thread_arena("t1")
            assert thread_arena("t1") is not thread_arena("t2")
        finally:
            release_thread_arenas()

    def test_threads_never_share(self):
        try:
            mine = thread_arena("shared-key")
            seen = []

            def probe():
                seen.append(thread_arena("shared-key"))
                release_thread_arenas()

            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
            assert seen[0] is not mine
        finally:
            release_thread_arenas()

    def test_release_reports_freed_bytes(self):
        arena = thread_arena("sized")
        arena.block("scores", (2, 4, 8), np.int64)
        retained = arena.nbytes()
        assert retained > 0
        freed = release_thread_arenas()
        assert freed >= retained
        assert arena.nbytes() == 0
