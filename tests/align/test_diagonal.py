"""Unit tests for the anti-diagonal layout transformation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.align import (
    DiagonalLayout,
    diagonal_span,
    from_diagonal,
    skew_matrix,
    to_diagonal,
    unskew_matrix,
)


class TestCoordinateMaps:
    def test_forward(self):
        assert to_diagonal(2, 3) == (5, 3)

    def test_inverse(self):
        assert from_diagonal(5, 3) == (2, 3)

    @given(st.integers(0, 1000), st.integers(0, 1000))
    def test_bijection(self, i, j):
        assert from_diagonal(*to_diagonal(i, j)) == (i, j)

    def test_vectorised(self):
        i = np.array([0, 1, 2])
        j = np.array([2, 1, 0])
        d, k = to_diagonal(i, j)
        assert np.array_equal(d, np.array([2, 2, 2]))
        ii, jj = from_diagonal(d, k)
        assert np.array_equal(ii, i) and np.array_equal(jj, j)


class TestDiagonalSpan:
    def test_corner_diagonals(self):
        assert diagonal_span(0, 3, 2) == (0, 1)
        assert diagonal_span(5, 3, 2) == (2, 3)

    def test_middle(self):
        # 4x3 grid (m=3, n=2): diagonal 2 holds (2,0),(1,1),(0,2).
        assert diagonal_span(2, 3, 2) == (0, 3)

    def test_out_of_range(self):
        assert diagonal_span(-1, 3, 2) == (0, 0)
        assert diagonal_span(6, 3, 2) == (0, 0)

    def test_widths_sum_to_cells(self):
        m, n = 7, 4
        total = sum(
            hi - lo for lo, hi in (diagonal_span(d, m, n) for d in range(m + n + 1))
        )
        assert total == (m + 1) * (n + 1)


class TestLayout:
    def test_geometry(self):
        layout = DiagonalLayout(3, 2)
        assert layout.rows == 6
        assert layout.row_width == 3
        assert layout.logical_cells == 12
        assert layout.padded_cells == 18
        assert layout.padding_overhead == pytest.approx(0.5)

    def test_square(self):
        layout = DiagonalLayout(10, 10)
        assert layout.rows == 21
        assert layout.row_width == 11


class TestSkew:
    def test_roundtrip_small(self, rng):
        m, n = 5, 3
        matrix = rng.integers(0, 100, size=(m + 1, n + 1))
        skewed = skew_matrix(matrix)
        back = unskew_matrix(skewed, m, n)
        assert np.array_equal(back, matrix)

    def test_diagonals_are_rows(self):
        matrix = np.arange(12).reshape(3, 4)  # m=2, n=3
        skewed = skew_matrix(matrix, fill=-1)
        # Diagonal 2 holds (2,0)=8, (1,1)=5, (0,2)=2 in increasing-j order.
        assert skewed[2].tolist() == [8, 5, 2]

    def test_fill_value(self):
        skewed = skew_matrix(np.ones((2, 2), dtype=int), fill=-7)
        assert (skewed == -7).sum() > 0

    def test_unskew_shape_check(self):
        with pytest.raises(ValueError):
            unskew_matrix(np.zeros((3, 3)), 5, 5)

    def test_skew_requires_2d(self):
        with pytest.raises(ValueError):
            skew_matrix(np.zeros(5))

    @given(st.integers(0, 8), st.integers(0, 8))
    def test_roundtrip_property(self, m, n):
        matrix = np.arange((m + 1) * (n + 1)).reshape(m + 1, n + 1)
        assert np.array_equal(unskew_matrix(skew_matrix(matrix), m, n), matrix)
