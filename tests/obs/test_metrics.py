"""Unit tests for the metrics registry and its Prometheus rendering."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry, NullRegistry


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_bins_total")
        c.labels(bin=1).inc(4)
        c.labels(bin=2).inc()
        assert c.value(bin=1) == 4
        assert c.value(bin=2) == 1
        assert c.value(bin=3) == 0

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("repro_mono_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_memoized_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x_total") is reg.counter("repro_x_total")

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name!")

    def test_thread_safety(self):
        c = MetricsRegistry().counter("repro_threads_total")

        def work():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 80_000


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("repro_depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value() == 7


class TestHistogram:
    def test_observations_land_in_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        child = h.labels()
        assert child.count == 5
        assert child.sum == pytest.approx(56.05)
        cumulative = dict(child.bucket_counts())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 3
        assert cumulative[10.0] == 4
        assert cumulative[float("inf")] == 5

    def test_boundary_is_inclusive(self):
        """Prometheus semantics: le is <=, so an exact boundary hit counts."""
        h = MetricsRegistry().histogram("repro_edge_seconds", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert dict(h.labels().bucket_counts())[1.0] == 1

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_bad_seconds", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_empty_seconds", buckets=())


class TestRender:
    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_requests_total", "Requests.").labels(kind="ok").inc(3)
        reg.gauge("repro_depth", "Queue depth.").set(2)
        h = reg.histogram("repro_lat_seconds", "Latency.", buckets=(0.5, 1.0))
        h.observe(0.25)
        text = reg.render()
        assert "# HELP repro_requests_total Requests." in text
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{kind="ok"} 3' in text
        assert "repro_depth 2" in text
        assert 'repro_lat_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_sum 0.25" in text
        assert "repro_lat_seconds_count 1" in text

    def test_families_without_samples_are_omitted(self):
        reg = MetricsRegistry()
        reg.counter("repro_untouched_total", "never incremented")
        assert reg.render() == ""


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        reg = NullRegistry()
        c = reg.counter("repro_x_total")
        c.inc()
        c.labels(bin=1).inc(5)
        reg.gauge("repro_g").set(9)
        reg.histogram("repro_h_seconds").observe(1.0)
        assert c.value() == 0.0
        assert reg.render() == ""
        assert not reg.enabled
