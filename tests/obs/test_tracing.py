"""Unit tests for span tracing: nesting, timing, rendering, null path."""

import threading
import time

import pytest

from repro import obs
from repro.obs.tracing import NullTracer, Tracer, render_span_tree


@pytest.fixture(autouse=True)
def reset_global_obs():
    yield
    obs.disable()


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a1"]
        assert tracer.last_root() is root
        assert tracer.last_root("root") is root
        assert tracer.last_root("missing") is None

    def test_wall_time_measured(self):
        tracer = Tracer()
        with tracer.span("sleepy") as sp:
            time.sleep(0.02)
        assert sp.wall_s >= 0.015
        assert sp.cpu_s >= 0.0

    def test_attributes_at_open_and_set(self):
        tracer = Tracer()
        with tracer.span("stage", tasks=8) as sp:
            sp.set(eager=5, fraction=0.625)
        assert sp.attributes == {"tasks": 8, "eager": 5, "fraction": 0.625}

    def test_exception_annotates_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as sp:
                raise RuntimeError("nope")
        assert sp.attributes["error"] == "RuntimeError"
        assert tracer.last_root() is sp

    def test_find_descendants(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            for b in (1, 1, 2):
                with tracer.span("executor", bin=b):
                    pass
        found = root.find("executor")
        assert len(found) == 3
        assert [s.attributes["bin"] for s in found] == [1, 1, 2]

    def test_threads_get_separate_trees(self):
        tracer = Tracer()

        def work(name):
            with tracer.span(name):
                with tracer.span(name + ".child"):
                    pass

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = {r.name for r in tracer.roots}
        assert roots == {"t0", "t1", "t2", "t3"}
        assert all(len(r.children) == 1 for r in tracer.roots)

    def test_root_retention_bounded(self):
        tracer = Tracer(keep_roots=2)
        for i in range(5):
            with tracer.span(f"r{i}"):
                pass
        assert [r.name for r in tracer.roots] == ["r3", "r4"]


class TestRender:
    def test_tree_rendering(self):
        tracer = Tracer()
        with tracer.span("fastz.run", engine="batched") as root:
            with tracer.span("fastz.inspector", tasks=10):
                pass
            with tracer.span("fastz.executor", bin=1, tasks=4):
                pass
        text = render_span_tree(root)
        lines = text.splitlines()
        assert lines[0].startswith("fastz.run")
        assert "[engine=batched]" in lines[0]
        assert "├─ fastz.inspector" in text
        assert "└─ fastz.executor" in text
        assert "[bin=1 tasks=4]" in text
        assert "wall=" in lines[1] and "cpu=" in lines[1]


class TestGlobalState:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert isinstance(obs.get_tracer(), NullTracer)
        sp = obs.span("anything", x=1)
        with sp:
            sp.set(y=2)
        assert obs.get_tracer().last_root() is None

    def test_enable_then_disable(self):
        registry, tracer = obs.enable()
        assert obs.enabled()
        with obs.span("visible"):
            obs.counter("repro_seen_total").inc()
        assert tracer.last_root("visible") is not None
        assert registry.counter("repro_seen_total").value() == 1
        obs.disable()
        assert not obs.enabled()
        with obs.span("invisible"):
            pass
        assert tracer.last_root("invisible") is None

    def test_enable_is_idempotent(self):
        reg1, tr1 = obs.enable()
        reg2, tr2 = obs.enable()
        assert reg1 is reg2 and tr1 is tr2
