"""Unit tests for genome segmentation geometry."""

import pytest

from repro.jobs import Chunk, chunk_pairs, segment_sequence


class TestSegmentSequence:
    def test_cores_tile_exactly(self):
        chunks = segment_sequence(100_000, 32_768, 4_096)
        assert chunks[0].core_start == 0
        assert chunks[-1].core_end == 100_000
        for a, b in zip(chunks, chunks[1:]):
            assert a.core_end == b.core_start

    def test_every_position_owned_once(self):
        chunks = segment_sequence(1_000, 128, 32)
        for pos in range(1_000):
            assert sum(c.owns(pos) for c in chunks) == 1

    def test_last_core_absorbs_remainder(self):
        chunks = segment_sequence(100, 30, 0)
        # 100 // 30 = 3 cores; no stub tail chunk.
        assert len(chunks) == 3
        assert chunks[-1].core_span == 40

    def test_short_sequence_is_one_chunk(self):
        (only,) = segment_sequence(50, 200, 64)
        assert (only.core_start, only.core_end) == (0, 50)
        assert (only.start, only.end) == (0, 50)

    def test_windows_extend_by_overlap_clamped(self):
        chunks = segment_sequence(300, 100, 40)
        assert (chunks[0].start, chunks[0].end) == (0, 140)
        assert (chunks[1].start, chunks[1].end) == (60, 240)
        assert (chunks[2].start, chunks[2].end) == (160, 300)

    def test_validation(self):
        with pytest.raises(ValueError):
            segment_sequence(0, 100, 10)
        with pytest.raises(ValueError):
            segment_sequence(100, 0, 10)
        with pytest.raises(ValueError):
            segment_sequence(100, 10, -1)
        with pytest.raises(ValueError):
            Chunk(index=0, core_start=10, core_end=5, start=0, end=20)
        with pytest.raises(ValueError):
            Chunk(index=0, core_start=0, core_end=10, start=2, end=20)


class TestChunkPairs:
    def test_cross_product(self):
        t = segment_sequence(200, 100, 10)
        q = segment_sequence(300, 100, 10)
        pairs = chunk_pairs(t, q)
        assert len(pairs) == len(t) * len(q)
        assert [p.task_id for p in pairs[:3]] == ["c0x0", "c0x1", "c0x2"]

    def test_pair_ownership(self):
        t = segment_sequence(200, 100, 10)
        q = segment_sequence(200, 100, 10)
        pairs = chunk_pairs(t, q)
        for tp, qp in ((0, 0), (0, 150), (199, 42)):
            assert sum(p.owns(tp, qp) for p in pairs) == 1

    def test_window_area_weight(self):
        t = segment_sequence(200, 100, 10)
        q = segment_sequence(200, 100, 10)
        p = chunk_pairs(t, q)[0]
        assert p.window_area == (t[0].end - t[0].start) * (q[0].end - q[0].start)
