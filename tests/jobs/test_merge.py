"""Unit tests for deterministic chunk-result merging."""

import random

import pytest

from repro.align import Alignment
from repro.jobs import dedupe_records, ops_from_cigar, sort_canonical


def aln(ts, te, qs, qe, score=100, ops=()):
    return Alignment(ts, te, qs, qe, score=score, ops=ops)


class TestOpsFromCigar:
    def test_round_trip(self):
        ops = (("M", 120), ("D", 2), ("M", 87), ("I", 1), ("M", 4))
        a = aln(0, 213, 0, 212, ops=ops)
        assert ops_from_cigar(a.cigar()) == ops

    def test_empty(self):
        assert ops_from_cigar("") == ()

    @pytest.mark.parametrize("bad", ["M12", "3X", "12", "1M x", "1M2"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError, match="malformed"):
            ops_from_cigar(bad)


class TestDedupe:
    def test_keeps_first_in_anchor_order(self):
        # The same interval discovered from two anchors: the survivor must
        # be the one whose anchor sorts first in pipeline (query-major)
        # order, regardless of record arrival order.
        early = aln(10, 20, 10, 20, score=50)
        late = aln(10, 20, 10, 20, score=50)
        records = [(15, 99, late), (15, 12, early)]
        kept = dedupe_records(records)
        assert len(kept) == 1
        assert kept[0] is early

    def test_distinct_intervals_all_kept(self):
        records = [(0, 0, aln(0, 5, 0, 5)), (1, 1, aln(10, 15, 10, 15))]
        assert len(dedupe_records(records)) == 2

    def test_arrival_order_irrelevant(self):
        rng = random.Random(5)
        records = [
            (t, q, aln(t, t + 10, q, q + 10, score=t + q))
            for t in range(0, 50, 10)
            for q in range(0, 50, 10)
        ]
        baseline = dedupe_records(records)
        for _ in range(5):
            shuffled = records[:]
            rng.shuffle(shuffled)
            assert dedupe_records(shuffled) == baseline


class TestSortCanonical:
    def test_total_order(self):
        alignments = [
            aln(5, 9, 0, 4, score=10),
            aln(0, 4, 5, 9, score=1),
            aln(0, 4, 0, 4, score=7),
        ]
        ordered = sort_canonical(alignments)
        assert [a.target_start for a in ordered] == [0, 0, 5]
        assert [a.query_start for a in ordered[:2]] == [0, 5]

    def test_shuffle_invariant(self):
        rng = random.Random(11)
        alignments = [aln(t, t + 3, (t * 7) % 20, (t * 7) % 20 + 3) for t in range(15)]
        baseline = sort_canonical(alignments)
        for _ in range(5):
            shuffled = alignments[:]
            rng.shuffle(shuffled)
            assert sort_canonical(shuffled) == baseline
