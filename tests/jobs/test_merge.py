"""Unit tests for deterministic chunk-result merging."""

import random

import pytest

from repro.align import Alignment
from repro.jobs import (
    IncrementalMerger,
    dedupe_records,
    ops_from_cigar,
    sort_canonical,
)


def aln(ts, te, qs, qe, score=100, ops=()):
    return Alignment(ts, te, qs, qe, score=score, ops=ops)


class TestOpsFromCigar:
    def test_round_trip(self):
        ops = (("M", 120), ("D", 2), ("M", 87), ("I", 1), ("M", 4))
        a = aln(0, 213, 0, 212, ops=ops)
        assert ops_from_cigar(a.cigar()) == ops

    def test_empty(self):
        assert ops_from_cigar("") == ()

    @pytest.mark.parametrize("bad", ["M12", "3X", "12", "1M x", "1M2"])
    def test_malformed(self, bad):
        with pytest.raises(ValueError, match="malformed"):
            ops_from_cigar(bad)


class TestDedupe:
    def test_keeps_first_in_anchor_order(self):
        # The same interval discovered from two anchors: the survivor must
        # be the one whose anchor sorts first in pipeline (query-major)
        # order, regardless of record arrival order.
        early = aln(10, 20, 10, 20, score=50)
        late = aln(10, 20, 10, 20, score=50)
        records = [(15, 99, late), (15, 12, early)]
        kept = dedupe_records(records)
        assert len(kept) == 1
        assert kept[0] is early

    def test_distinct_intervals_all_kept(self):
        records = [(0, 0, aln(0, 5, 0, 5)), (1, 1, aln(10, 15, 10, 15))]
        assert len(dedupe_records(records)) == 2

    def test_arrival_order_irrelevant(self):
        rng = random.Random(5)
        records = [
            (t, q, aln(t, t + 10, q, q + 10, score=t + q))
            for t in range(0, 50, 10)
            for q in range(0, 50, 10)
        ]
        baseline = dedupe_records(records)
        for _ in range(5):
            shuffled = records[:]
            rng.shuffle(shuffled)
            assert dedupe_records(shuffled) == baseline


class TestSortCanonical:
    def test_total_order(self):
        alignments = [
            aln(5, 9, 0, 4, score=10),
            aln(0, 4, 5, 9, score=1),
            aln(0, 4, 0, 4, score=7),
        ]
        ordered = sort_canonical(alignments)
        assert [a.target_start for a in ordered] == [0, 0, 5]
        assert [a.query_start for a in ordered[:2]] == [0, 5]

    def test_shuffle_invariant(self):
        rng = random.Random(11)
        alignments = [aln(t, t + 3, (t * 7) % 20, (t * 7) % 20 + 3) for t in range(15)]
        baseline = sort_canonical(alignments)
        for _ in range(5):
            shuffled = alignments[:]
            rng.shuffle(shuffled)
            assert sort_canonical(shuffled) == baseline


def random_tasks(rng, n_tasks=12, max_records=8):
    """Synthetic task set: each task's records respect its min anchor key."""
    tasks = {}
    for i in range(n_tasks):
        base_q = rng.randrange(0, 400)
        base_t = rng.randrange(0, 400)
        records = []
        for _ in range(rng.randrange(0, max_records)):
            q = base_q + rng.randrange(0, 200)
            t = base_t + rng.randrange(0, 200) if q > base_q else base_t + rng.randrange(0, 200)
            # Duplicate intervals across tasks on purpose (~1 in 3).
            if records and rng.random() < 0.3:
                prev = rng.choice(records)[2]
                a = aln(
                    prev.target_start, prev.target_end,
                    prev.query_start, prev.query_end, score=prev.score,
                )
            else:
                a = aln(t, t + 25, q, q + 25, score=rng.randrange(1, 500))
            records.append((t, q, a))
        tasks[f"task-{i}"] = ((base_q, base_t), records)
    return tasks


class TestIncrementalMerger:
    def test_completion_order_irrelevant(self):
        rng = random.Random(7)
        tasks = random_tasks(rng)
        all_records = [r for _, records in tasks.values() for r in records]
        baseline = sort_canonical(dedupe_records(all_records))
        for trial in range(6):
            order = list(tasks)
            rng.shuffle(order)
            merger = IncrementalMerger(
                {tid: key for tid, (key, _) in tasks.items()}
            )
            for tid in order:
                merger.complete(tid, tasks[tid][1])
            assert merger.finalize() == baseline, f"trial {trial}"

    def test_on_alignment_fires_incrementally_in_anchor_order(self):
        rng = random.Random(19)
        tasks = random_tasks(rng)
        emitted = []
        merger = IncrementalMerger(
            {tid: key for tid, (key, _) in tasks.items()},
            on_alignment=emitted.append,
        )
        order = sorted(tasks, key=lambda tid: rng.random())
        fired_before_last = 0
        for tid in order[:-1]:
            merger.complete(tid, tasks[tid][1])
            fired_before_last = len(emitted)
        merger.complete(order[-1], tasks[order[-1]][1])
        final = merger.finalize()
        # Every record fires exactly once, and the stream is the dedupe
        # output in ascending (anchor_q, anchor_t) emission order.
        assert sorted(map(id, emitted)) == sorted(map(id, final))
        assert merger.emitted == len(final)
        assert fired_before_last <= len(final)

    def test_watermark_advances_and_buffers_shrink(self):
        merger = IncrementalMerger({"a": (0, 0), "b": (100, 0), "c": (200, 0)})
        assert merger.watermark() == (0, 0)
        # Task c's record is above b's min key: it must buffer, not emit.
        merger.complete("c", [(0, 250, aln(0, 25, 250, 275))])
        assert merger.watermark() == (0, 0)
        assert merger.emitted == 0
        # Completing a (empty) raises the watermark past nothing buffered.
        merger.complete("a", [])
        assert merger.watermark() == (100, 0)
        assert merger.emitted == 0
        merger.complete("b", [(0, 120, aln(0, 25, 120, 145))])
        assert merger.watermark() is None
        assert merger.emitted == 2

    def test_duplicate_completion_ignored(self):
        merger = IncrementalMerger({"a": (0, 0)})
        merger.complete("a", [(0, 0, aln(0, 25, 0, 25))])
        merger.complete("a", [(0, 0, aln(500, 525, 500, 525))])
        assert merger.finalize() == [aln(0, 25, 0, 25)]

    def test_finalize_with_pending_raises(self):
        merger = IncrementalMerger({"a": (0, 0), "b": (5, 5)})
        merger.complete("a", [])
        with pytest.raises(RuntimeError, match="pending"):
            merger.finalize()

    def test_unknown_task_ignored(self):
        merger = IncrementalMerger({"a": (0, 0)})
        merger.complete("ghost", [(0, 0, aln(0, 25, 0, 25))])
        assert merger.pending == 1
        assert merger.emitted == 0
