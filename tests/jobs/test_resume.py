"""Kill-and-resume test: a SIGKILLed job resumes from its journal.

Runs the job in a subprocess with ``REPRO_WGA_TEST_EXIT_AFTER=K``, which
``os._exit(137)``s the coordinator right after the K-th task record is
journaled — the exact effect of a SIGKILL mid-run (no cleanup, no flush
beyond what already hit the journal).  The resumed job must re-execute
only the unfinished tasks and end with output identical to an
uninterrupted run.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.pipeline import run_fastz
from repro.genome import SegmentClass, build_pair
from repro.jobs import JobOptions, run_wga
from repro.jobs.merge import sort_canonical
from repro.lastz import LastzConfig
from repro.scoring import default_scheme

EXIT_AFTER = 5

# The subprocess re-creates the same deterministic job and gets killed by
# the env hook partway through.
_KILLED_JOB = """
import sys
from repro.genome import SegmentClass, build_pair
from repro.jobs import JobOptions, run_wga
from repro.lastz import LastzConfig
from repro.scoring import default_scheme

pair = build_pair(
    "wga", target_length=24_000, query_length=24_000,
    classes=[SegmentClass("mid", 10, 80, 300, divergence=0.06, indel_rate=0.004)],
    rng=7,
)
run_wga(
    pair.target, pair.query,
    LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400), diag_band=150),
    job=JobOptions(chunk_size=8_192, overlap=2_048, workers=2, fsync=False),
    job_dir=sys.argv[1],
)
"""


@pytest.fixture(scope="module")
def pair():
    return build_pair(
        "wga",
        target_length=24_000,
        query_length=24_000,
        classes=[
            SegmentClass("mid", 10, 80, 300, divergence=0.06, indel_rate=0.004)
        ],
        rng=7,
    )


@pytest.fixture(scope="module")
def config():
    return LastzConfig(
        scheme=default_scheme(gap_extend=60, ydrop=2400), diag_band=150
    )


def task_records(job_dir: Path):
    lines = (job_dir / "journal.jsonl").read_text().splitlines()
    records = []
    for line in lines:
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # possible torn final line — exactly what replay drops
    return [r for r in records if r.get("type") in ("seeds", "chunk")]


def test_sigkilled_job_resumes_without_rework(pair, config, tmp_path):
    env = dict(
        os.environ,
        REPRO_WGA_TEST_EXIT_AFTER=str(EXIT_AFTER),
        PYTHONPATH=os.pathsep.join(filter(None, [
            str(Path(__file__).resolve().parents[2] / "src"),
            os.environ.get("PYTHONPATH", ""),
        ])),
    )
    proc = subprocess.run(
        [sys.executable, "-c", _KILLED_JOB, str(tmp_path)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 137, proc.stderr

    done_before = task_records(tmp_path)
    assert len(done_before) == EXIT_AFTER

    report = run_wga(
        pair.target,
        pair.query,
        config,
        job=JobOptions(chunk_size=8_192, overlap=2_048, workers=2, fsync=False),
        job_dir=tmp_path,
    )
    assert report.resumed
    # Exactly the journaled tasks were skipped...
    assert report.seed_skipped + report.extend_skipped == EXIT_AFTER
    # ...and no journaled task ran twice (ids stay unique after resume).
    done_after = task_records(tmp_path)
    ids = [(r["type"], r["task"]) for r in done_after]
    assert len(ids) == len(set(ids))
    assert len(done_after) == report.n_seed_tasks + report.n_extend_tasks

    # Final output identical to an uninterrupted single-pass run.
    reference = sort_canonical(
        run_fastz(pair.target, pair.query, config).unique_alignments()
    )
    assert report.alignments == reference
