"""Unit tests for the append-only job journal."""

import json

import pytest

from repro.jobs import Journal, JournalError, replay


class TestRoundTrip:
    def test_append_then_replay(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        records = [{"type": "header", "digest": "x"}, {"type": "chunk", "task": "c0x0"}]
        with Journal(path, fsync=False) as journal:
            for record in records:
                journal.append(record)
            assert journal.appended == 2
        assert list(replay(path)) == records

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path, fsync=False) as journal:
            journal.append({"a": 1})
        with Journal(path, fsync=False) as journal:
            journal.append({"b": 2})
        assert list(replay(path)) == [{"a": 1}, {"b": 2}]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "job" / "journal.jsonl"
        with Journal(path, fsync=False) as journal:
            journal.append({"a": 1})
        assert path.exists()

    def test_fsync_default_on(self, tmp_path):
        with Journal(tmp_path / "j.jsonl") as journal:
            assert journal.fsync
            journal.append({"a": 1})


class TestCrashTolerance:
    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"a": 1}) + "\n" + '{"type": "chu')
        assert list(replay(path)) == [{"a": 1}]

    def test_torn_only_line_yields_nothing(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"half')
        assert list(replay(path)) == []

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"a": 1}\nnot json\n{"b": 2}\n')
        with pytest.raises(JournalError, match="line 2"):
            list(replay(path))

    def test_non_object_record_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('[1, 2]\n{"b": 2}\n')
        with pytest.raises(JournalError, match="not an object"):
            list(replay(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        assert list(replay(path)) == []

    def test_reopen_truncates_torn_tail(self, tmp_path):
        # Crash mid-append, then resume: the new record must not be glued
        # onto the torn line (which would corrupt the file mid-way and
        # make every later replay raise).
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"a": 1}) + "\n" + '{"type": "chu')
        with Journal(path, fsync=False) as journal:
            journal.append({"b": 2})
            journal.append({"c": 3})
        assert list(replay(path)) == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_reopen_truncates_torn_only_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"half')
        with Journal(path, fsync=False) as journal:
            journal.append({"a": 1})
        assert list(replay(path)) == [{"a": 1}]
        assert path.read_text().startswith('{"a"')

    def test_reopen_complete_file_untouched(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        original = json.dumps({"a": 1}) + "\n"
        path.write_text(original)
        with Journal(path, fsync=False):
            pass
        assert path.read_text() == original
