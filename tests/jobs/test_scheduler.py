"""Unit tests for the fault-tolerant task scheduler.

Handlers live at module level: the pool pickles them by reference.
Fault behaviour is driven through the task payload, so the same handlers
serve the inline and multiprocess paths.
"""

import os

import pytest

from repro.jobs import TaskSpec, plan_balance, run_tasks


def ok_handler(init_arg, payload, attempt):
    return {"task": payload["n"], "init": init_arg, "attempt": attempt}


def flaky_handler(init_arg, payload, attempt):
    if attempt <= payload.get("fail_attempts", 0):
        raise RuntimeError(f"flaky (attempt {attempt})")
    return payload["n"]


def dying_handler(init_arg, payload, attempt):
    if attempt <= payload.get("die_attempts", 0):
        os._exit(1)  # simulates a segfault / OOM-kill: no exception, no result
    return payload["n"]


def specs(n, **payload_extra):
    return [
        TaskSpec(task_id=f"t{i}", payload={"n": i, **payload_extra}, weight=i + 1)
        for i in range(n)
    ]


class TestPlanBalance:
    def test_loads_descending_and_conserved(self):
        loads = plan_balance(specs(7), 3)
        assert loads == sorted(loads, reverse=True)
        assert sum(loads) == sum(i + 1 for i in range(7))

    def test_empty(self):
        assert plan_balance([], 4) == [0.0] * 4

    def test_balanced_within_heaviest_task(self):
        loads = plan_balance(specs(8), 2)
        assert loads[0] - loads[-1] <= max(i + 1 for i in range(8))


class TestInline:
    def test_all_succeed(self):
        outcomes = run_tasks(specs(5), ok_handler, "ctx")
        assert set(outcomes) == {f"t{i}" for i in range(5)}
        for i in range(5):
            o = outcomes[f"t{i}"]
            assert o.ok and o.attempts == 1 and o.worker_deaths == 0
            assert o.value == {"task": i, "init": "ctx", "attempt": 1}

    def test_retry_then_success(self):
        events = []
        outcomes = run_tasks(
            [TaskSpec("t0", {"n": 0, "fail_attempts": 2})],
            flaky_handler,
            backoff_s=0.001,
            on_event=lambda kind, task, info: events.append(kind),
        )
        assert outcomes["t0"].ok and outcomes["t0"].attempts == 3
        assert events == ["retry", "retry", "done"]

    def test_quarantine_after_max_attempts(self):
        events = []
        outcomes = run_tasks(
            [TaskSpec("t0", {"n": 0, "fail_attempts": 99})],
            flaky_handler,
            max_attempts=3,
            backoff_s=0.001,
            on_event=lambda kind, task, info: events.append(kind),
        )
        o = outcomes["t0"]
        assert not o.ok and o.attempts == 3 and "flaky" in o.error
        assert events == ["retry", "retry", "quarantined"]

    def test_quarantine_does_not_block_other_tasks(self):
        tasks = [
            TaskSpec("bad", {"n": -1, "fail_attempts": 99}),
            TaskSpec("good", {"n": 1}),
        ]
        outcomes = run_tasks(tasks, flaky_handler, max_attempts=2, backoff_s=0.001)
        assert not outcomes["bad"].ok
        assert outcomes["good"].ok and outcomes["good"].value == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="unique"):
            run_tasks([TaskSpec("a", {}), TaskSpec("a", {})], ok_handler)
        with pytest.raises(ValueError):
            run_tasks(specs(1), ok_handler, max_attempts=0)
        with pytest.raises(ValueError):
            run_tasks(specs(1), ok_handler, workers=-1)

    def test_empty_task_list(self):
        assert run_tasks([], ok_handler) == {}


class TestPool:
    def test_all_succeed_across_workers(self):
        outcomes = run_tasks(specs(9), ok_handler, "ctx", workers=3)
        assert all(o.ok for o in outcomes.values())
        assert sorted(o.value["task"] for o in outcomes.values()) == list(range(9))

    def test_worker_failure_retried(self):
        outcomes = run_tasks(
            [TaskSpec("t0", {"n": 7, "fail_attempts": 1})],
            flaky_handler,
            workers=2,
            backoff_s=0.001,
        )
        assert outcomes["t0"].ok and outcomes["t0"].attempts == 2

    def test_worker_death_requeues_task(self):
        events = []
        outcomes = run_tasks(
            [TaskSpec("t0", {"n": 3, "die_attempts": 1}), TaskSpec("t1", {"n": 4})],
            dying_handler,
            workers=2,
            backoff_s=0.001,
            on_event=lambda kind, task, info: events.append((kind, task)),
        )
        assert outcomes["t0"].ok and outcomes["t0"].value == 3
        assert outcomes["t0"].worker_deaths == 1
        assert outcomes["t0"].attempts == 2
        assert outcomes["t1"].ok
        assert ("worker_death", "t0") in events

    def test_reliably_lethal_task_quarantined(self):
        outcomes = run_tasks(
            [TaskSpec("t0", {"n": 0, "die_attempts": 99})],
            dying_handler,
            workers=1,
            max_attempts=2,
            backoff_s=0.001,
        )
        o = outcomes["t0"]
        assert not o.ok and o.worker_deaths == 2 and o.attempts == 2


class TestAttemptClaim:
    """The death-race staleness guard, exercised deterministically.

    The coordinator can observe one in-flight attempt twice — once via
    the death-reap and once via the dying worker's last queued ``fail``
    message — in either order.  ``_claim_attempt`` must admit exactly one
    observer per attempt, or a single failure burns two attempts toward
    quarantine and re-queues the task twice.
    """

    def _state(self):
        from repro.jobs.scheduler import _TaskState

        state = _TaskState(TaskSpec("t0", {"n": 0}))
        state.attempts = 1  # dispatched once, in flight
        return state

    def test_second_observer_of_same_attempt_is_stale(self):
        from repro.jobs.scheduler import _claim_attempt

        state = self._state()
        assert _claim_attempt(state, {}, 1)  # death-reap consumes attempt 1
        assert not _claim_attempt(state, {}, 1)  # late fail msg: stale

    def test_next_dispatch_is_claimable_again(self):
        from repro.jobs.scheduler import _claim_attempt

        state = self._state()
        assert _claim_attempt(state, {}, 1)
        state.attempts = 2  # re-queued task dispatched again
        assert _claim_attempt(state, {}, 2)
        assert not _claim_attempt(state, {}, 2)

    def test_old_attempt_numbers_are_stale(self):
        from repro.jobs.scheduler import _claim_attempt

        state = self._state()
        state.attempts = 2
        assert not _claim_attempt(state, {}, 1)

    def test_resolved_task_rejects_everything(self):
        from repro.jobs.scheduler import _claim_attempt

        state = self._state()
        assert not _claim_attempt(state, {"t0": object()}, 1)
