"""Tests for the whole-genome job runner (repro.jobs)."""
