"""End-to-end tests for ``run_wga``: equivalence, resume, fault tolerance.

The acceptance bar for the job runner is *byte-identity*: a segmented run
— at any worker count, with any resume history — must produce exactly the
alignments of a single-pass ``run_fastz``, including alignments that span
chunk seams.
"""

import json

import pytest

from repro.core.pipeline import run_fastz
from repro.genome import SegmentClass, build_pair
from repro.jobs import JobDigestMismatch, JobOptions, run_wga
from repro.jobs.merge import sort_canonical
from repro.lastz import LastzConfig, write_general, write_maf
from repro.scoring import default_scheme

CHUNK = 8_192
OVERLAP = 2_048


@pytest.fixture(scope="module")
def pair():
    return build_pair(
        "wga",
        target_length=24_000,
        query_length=24_000,
        classes=[
            SegmentClass("mid", 10, 80, 300, divergence=0.06, indel_rate=0.004)
        ],
        rng=7,
    )


@pytest.fixture(scope="module")
def config():
    return LastzConfig(
        scheme=default_scheme(gap_extend=60, ydrop=2400), diag_band=150
    )


@pytest.fixture(scope="module")
def reference(pair, config):
    result = run_fastz(pair.target, pair.query, config)
    return sort_canonical(result.unique_alignments())


def options(**kw):
    kw.setdefault("chunk_size", CHUNK)
    kw.setdefault("overlap", OVERLAP)
    kw.setdefault("fsync", False)
    kw.setdefault("backoff_s", 0.001)
    return JobOptions(**kw)


def journal_task_records(job_dir):
    lines = (job_dir / "journal.jsonl").read_text().splitlines()
    records = [json.loads(line) for line in lines]
    return [r for r in records if r["type"] in ("seeds", "chunk")]


class TestEquivalence:
    def test_inline_matches_single_pass(self, pair, config, reference, tmp_path):
        report = run_wga(
            pair.target, pair.query, config, job=options(), job_dir=tmp_path
        )
        assert report.alignments == reference
        assert report.complete and not report.resumed

    def test_seam_spanning_alignments_survive_tiny_overlap(
        self, pair, config, reference, tmp_path
    ):
        # An overlap far below the y-drop horizon forces the seam guard to
        # re-extend window-clipped anchors against the full sequences.
        report = run_wga(
            pair.target,
            pair.query,
            config,
            job=options(chunk_size=4_096, overlap=64),
            job_dir=tmp_path,
        )
        assert report.window_fallbacks > 0
        assert report.alignments == reference

    def test_worker_counts_byte_identical(self, pair, config, tmp_path):
        outputs = {}
        for workers in (0, 2):
            job_dir = tmp_path / f"w{workers}"
            report = run_wga(
                pair.target,
                pair.query,
                config,
                job=options(workers=workers),
                job_dir=job_dir,
            )
            general = job_dir / "out.tsv"
            maf = job_dir / "out.maf"
            write_general(general, report.alignments, pair.target, pair.query)
            write_maf(maf, report.alignments, pair.target, pair.query)
            outputs[workers] = (general.read_bytes(), maf.read_bytes())
        assert outputs[0] == outputs[2]


class TestResume:
    def test_completed_job_skips_everything(self, pair, config, tmp_path):
        first = run_wga(
            pair.target, pair.query, config, job=options(), job_dir=tmp_path
        )
        n_tasks = len(journal_task_records(tmp_path))
        second = run_wga(
            pair.target, pair.query, config, job=options(), job_dir=tmp_path
        )
        assert second.resumed
        assert second.seed_skipped == second.n_seed_tasks
        assert second.extend_skipped == second.n_extend_tasks
        assert second.alignments == first.alignments
        # No task was re-executed: the journal gained no task records.
        assert len(journal_task_records(tmp_path)) == n_tasks

    def test_digest_mismatch_rejected(self, pair, config, tmp_path):
        run_wga(pair.target, pair.query, config, job=options(), job_dir=tmp_path)
        other = LastzConfig(
            scheme=default_scheme(gap_extend=30, ydrop=2400), diag_band=150
        )
        with pytest.raises(JobDigestMismatch):
            run_wga(pair.target, pair.query, other, job=options(), job_dir=tmp_path)

    def test_fresh_discards_mismatched_journal(self, pair, config, tmp_path):
        run_wga(pair.target, pair.query, config, job=options(), job_dir=tmp_path)
        other = LastzConfig(
            scheme=default_scheme(gap_extend=30, ydrop=2400), diag_band=150
        )
        report = run_wga(
            pair.target, pair.query, other,
            job=options(), job_dir=tmp_path, fresh=True,
        )
        assert not report.resumed
        assert list(tmp_path.glob("journal.jsonl.stale-*"))

    def test_stale_rotation_names_never_collide(self, tmp_path):
        # A wall-clock-seconds stamp collides when two fresh runs rotate
        # within the same second; the digest+pid+monotonic stamp must not.
        from repro.jobs.runner import _stale_journal_name

        journal = tmp_path / "journal.jsonl"
        digest = "abcdef0123456789"
        names = {_stale_journal_name(journal, digest) for _ in range(64)}
        assert len(names) == 64
        for name in names:
            assert digest[:12] in name.name

    def test_back_to_back_fresh_runs_keep_both_rotations(
        self, pair, config, tmp_path
    ):
        run_wga(pair.target, pair.query, config, job=options(), job_dir=tmp_path)
        for _ in range(2):
            run_wga(
                pair.target, pair.query, config,
                job=options(), job_dir=tmp_path, fresh=True,
            )
        # Three journals existed; the two discarded ones both survive.
        assert len(list(tmp_path.glob("journal.jsonl.stale-*"))) == 2


class TestIncrementalAlignments:
    def test_on_alignment_streams_the_final_set(
        self, pair, config, reference, tmp_path
    ):
        streamed = []
        report = run_wga(
            pair.target, pair.query, config,
            job=options(), job_dir=tmp_path, on_alignment=streamed.append,
        )
        assert report.alignments == reference
        assert sort_canonical(streamed) == report.alignments


class TestFaultTolerance:
    @pytest.fixture()
    def extend_task_id(self, pair, config, tmp_path_factory):
        """A chunk-task id that actually exists for this pair/geometry."""
        probe = tmp_path_factory.mktemp("probe")
        run_wga(pair.target, pair.query, config, job=options(), job_dir=probe)
        chunk_tasks = [
            r["task"] for r in journal_task_records(probe) if r["type"] == "chunk"
        ]
        assert chunk_tasks
        return sorted(chunk_tasks)[0]

    def test_transient_failure_retried(
        self, pair, config, reference, tmp_path, monkeypatch, extend_task_id
    ):
        monkeypatch.setenv("REPRO_WGA_TEST_FAIL", f"e:{extend_task_id}=1")
        report = run_wga(
            pair.target, pair.query, config, job=options(), job_dir=tmp_path
        )
        assert report.retries == 1
        assert report.complete
        assert report.alignments == reference

    def test_persistent_failure_quarantined(
        self, pair, config, reference, tmp_path, monkeypatch, extend_task_id
    ):
        monkeypatch.setenv("REPRO_WGA_TEST_FAIL", f"e:{extend_task_id}=-1")
        report = run_wga(
            pair.target,
            pair.query,
            config,
            job=options(max_attempts=2),
            job_dir=tmp_path,
        )
        # The job completes and reports the gap instead of crashing.
        assert not report.complete
        (gap,) = report.quarantined
        assert gap.task_id == extend_task_id
        assert gap.phase == "extend"
        assert gap.attempts == 2
        assert 0 < len(report.alignments) < len(reference)

    def test_quarantined_chunk_retried_on_resume(
        self, pair, config, reference, tmp_path, monkeypatch, extend_task_id
    ):
        monkeypatch.setenv("REPRO_WGA_TEST_FAIL", f"e:{extend_task_id}=-1")
        first = run_wga(
            pair.target,
            pair.query,
            config,
            job=options(max_attempts=2),
            job_dir=tmp_path,
        )
        assert first.quarantined
        monkeypatch.delenv("REPRO_WGA_TEST_FAIL")
        healed = run_wga(
            pair.target, pair.query, config, job=options(), job_dir=tmp_path
        )
        assert healed.resumed and healed.complete
        assert healed.alignments == reference

    def test_pool_retry_in_worker(
        self, pair, config, reference, tmp_path, monkeypatch, extend_task_id
    ):
        # Workers inherit the environment, so the fault fires inside a
        # spawned process and the retry crosses the pool boundary.
        monkeypatch.setenv("REPRO_WGA_TEST_FAIL", f"e:{extend_task_id}=1")
        report = run_wga(
            pair.target,
            pair.query,
            config,
            job=options(workers=2),
            job_dir=tmp_path,
        )
        assert report.retries == 1
        assert report.complete
        assert report.alignments == reference
