"""Unit tests for scoring schemes."""

import numpy as np
import pytest

from repro.scoring import HOXD70, NEG_INF, ScoringScheme, default_scheme, unit_scheme


class TestHoxd70:
    def test_symmetric(self):
        assert np.array_equal(HOXD70, HOXD70.T)

    def test_paper_values(self):
        # A/A = 91, C/C = G/G = 100, transitions are mild, transversions harsh.
        assert HOXD70[0, 0] == 91
        assert HOXD70[1, 1] == 100
        assert HOXD70[0, 2] == -31  # A<->G transition
        assert HOXD70[0, 3] == -123  # A<->T transversion


class TestDefaultScheme:
    def test_lastz_defaults(self):
        s = default_scheme()
        assert s.gap_open == 400
        assert s.gap_extend == 30
        assert s.ydrop == 400 + 300 * 30  # 9400
        assert s.xdrop == 910
        assert s.hsp_threshold == 3000
        assert s.gapped_threshold == 3000

    def test_overrides(self):
        s = default_scheme(gap_extend=60, ydrop=2400)
        assert s.gap_extend == 60
        assert s.ydrop == 2400

    def test_matrix_has_n(self):
        s = default_scheme()
        assert s.substitution.shape == (5, 5)
        assert s.substitution[4, 0] < 0
        assert s.substitution[0, 4] < 0

    def test_matrix_read_only(self):
        s = default_scheme()
        with pytest.raises(ValueError):
            s.substitution[0, 0] = 1


class TestUnitScheme:
    def test_values(self):
        s = unit_scheme()
        assert s.score_pair(0, 0) == 1
        assert s.score_pair(0, 1) == -1
        assert s.gap_first() == 3

    def test_match_and_worst(self):
        s = unit_scheme(match=5, mismatch=-7)
        assert s.match_score() == 5
        assert s.worst_mismatch() == -7


class TestValidation:
    def test_shape(self):
        with pytest.raises(ValueError):
            ScoringScheme(
                substitution=np.zeros((4, 4), dtype=np.int32),
                gap_open=1,
                gap_extend=1,
                ydrop=1,
                xdrop=1,
                hsp_threshold=0,
                gapped_threshold=0,
            )

    def test_negative_penalty(self):
        with pytest.raises(ValueError):
            unit_scheme(gap_open=-1)

    def test_zero_extend(self):
        with pytest.raises(ValueError):
            ScoringScheme(
                substitution=np.zeros((5, 5), dtype=np.int32),
                gap_open=1,
                gap_extend=0,
                ydrop=1,
                xdrop=1,
                hsp_threshold=0,
                gapped_threshold=0,
            )


class TestHelpers:
    def test_profile_row(self):
        s = unit_scheme()
        row = s.profile_row(0)
        assert row[0] == 1
        assert row[1] == -1

    def test_neg_inf_is_safely_additive(self):
        # NEG_INF must survive repeated subtraction without wrapping.
        v = np.int64(NEG_INF)
        for _ in range(10000):
            v -= 500
        assert v < NEG_INF
        assert v > np.iinfo(np.int64).min // 2
