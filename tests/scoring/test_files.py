"""Unit tests for LASTZ score-file I/O."""

import io

import numpy as np
import pytest

from repro.scoring import (
    HOXD70,
    default_scheme,
    read_score_file,
    unit_scheme,
    write_score_file,
)

_SAMPLE = """
# a comment line
gap_open_penalty = 350
gap_extend_penalty = 25
y_drop = 5000

     A     C     G     T
A   91  -114   -31  -123
C -114   100  -125   -31
G  -31  -125   100  -114
T -123   -31  -114    91
"""


class TestRead:
    def test_matrix_values(self):
        scheme = read_score_file(io.StringIO(_SAMPLE))
        assert np.array_equal(scheme.substitution[:4, :4], HOXD70)

    def test_parameters(self):
        scheme = read_score_file(io.StringIO(_SAMPLE))
        assert scheme.gap_open == 350
        assert scheme.gap_extend == 25
        assert scheme.ydrop == 5000

    def test_unspecified_params_default(self):
        scheme = read_score_file(io.StringIO(_SAMPLE))
        assert scheme.hsp_threshold == 3000  # LASTZ default

    def test_inline_comments_stripped(self):
        text = _SAMPLE.replace("= 350", "= 350   # tuned")
        assert read_score_file(io.StringIO(text)).gap_open == 350

    def test_missing_matrix_rejected(self):
        with pytest.raises(ValueError):
            read_score_file(io.StringIO("gap_open_penalty = 1\n"))

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            read_score_file(io.StringIO("A C G\nA 1 2 3\n"))

    def test_malformed_row_rejected(self):
        text = "A C G T\nA 1 2 3\n"
        with pytest.raises(ValueError):
            read_score_file(io.StringIO(text))


class TestRoundtrip:
    def test_default_scheme(self):
        buf = io.StringIO()
        write_score_file(buf, default_scheme())
        buf.seek(0)
        back = read_score_file(buf)
        original = default_scheme()
        assert np.array_equal(back.substitution[:4, :4], original.substitution[:4, :4])
        assert back.gap_open == original.gap_open
        assert back.ydrop == original.ydrop
        assert back.hsp_threshold == original.hsp_threshold

    def test_unit_scheme(self):
        buf = io.StringIO()
        write_score_file(buf, unit_scheme())
        buf.seek(0)
        back = read_score_file(buf)
        assert back.score_pair(0, 0) == 1
        assert back.gap_open == 2

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "scores.txt"
        write_score_file(path, default_scheme(ydrop=1234))
        back = read_score_file(path)
        assert back.ydrop == 1234
