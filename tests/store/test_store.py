"""Reference store behaviour: registration, lookup, corruption, seed cache."""

import numpy as np
import pytest

from repro.genome.alphabet import encode, encode_with_mask
from repro.genome.sequence import Sequence
from repro.seeding import build_seed_table
from repro.store import (
    ReferenceStore,
    StoreCorrupt,
    UnknownReference,
    reference_digest,
)
from repro.store.twobit import runs_from_mask


@pytest.fixture()
def store(tmp_path):
    return ReferenceStore(tmp_path / "store")


class TestGoldenDigests:
    """Pinned digest values: the content address is a wire format.

    A change here orphans every registered reference and breaks
    align-by-digest clients — bump STORE_VERSION if it is deliberate.
    """

    def test_plain(self):
        assert reference_digest(encode("ACGT")) == (
            "5852662d34407d94f18696f8ee375ddb57cf4f2e3c7c681034fabbe9cc2986cd"
        )

    def test_n_runs_are_content(self):
        codes = encode("ACGTNNNACGT")
        assert reference_digest(codes) == (
            "a5e58347d7201c45b75fe178a569cc6ed46791fe587cc71afaf0607d611e0168"
        )

    def test_mask_is_content(self):
        codes, mask = encode_with_mask("acgtACGT")
        assert reference_digest(codes, runs_from_mask(mask)) == (
            "60bec5dc4e2c0ac67030ff199a7eaa0f1e416c3f639cfeeeceda8586cccb1f17"
        )

    def test_unmasked_differs_from_masked(self):
        assert reference_digest(encode("ACGTACGT")) == (
            "2218caea2ba2a67c799c6ef672416a2735e242af3ee893993206c9bb57467c86"
        )

    def test_name_is_not_content(self, store):
        codes = encode("ACGT" * 50)
        assert store.add(codes, name="a") == store.add(codes, name="b")


class TestRegistration:
    def test_add_get_roundtrip(self, store, rng):
        codes = rng.integers(0, 4, size=1000).astype(np.uint8)
        digest = store.add(codes, name="chr1")
        ref = store.get(digest)
        assert ref.name == "chr1"
        assert len(ref) == 1000
        np.testing.assert_array_equal(ref.codes, codes)
        assert not ref.codes.flags.writeable
        assert ref.mask is None

    def test_add_sequence_object(self, store):
        seq = Sequence.from_text("chrX", "ACGTN" * 20)
        ref = store.get(store.add(seq))
        assert ref.name == "chrX"
        np.testing.assert_array_equal(ref.codes, seq.codes)
        np.testing.assert_array_equal(ref.sequence().codes, seq.codes)

    def test_mask_roundtrip(self, store):
        codes, mask = encode_with_mask("acgtACGTacgt" * 10)
        ref = store.get(store.add(codes, mask=mask))
        np.testing.assert_array_equal(ref.mask, mask)

    def test_idempotent(self, store):
        codes = encode("ACGT" * 100)
        d1 = store.add(codes, name="first")
        d2 = store.add(codes, name="second")
        assert d1 == d2
        assert store.get(d1).name == "first"  # first registration wins

    def test_codes_window(self, store, rng):
        codes = np.asarray(encode("ACGTNNN" + "TGCA" * 40))
        digest = store.add(codes)
        ref = store.get(digest)
        for start, stop in [(0, 7), (3, 11), (5, 5), (100, 167)]:
            np.testing.assert_array_equal(
                ref.codes_window(start, stop), codes[start:stop]
            )

    def test_unknown_digest(self, store):
        with pytest.raises(UnknownReference):
            store.get("0" * 64)

    def test_list_resolve_remove(self, store):
        d1 = store.add(encode("ACGT" * 30), name="a")
        d2 = store.add(encode("TTTT" * 30), name="b")
        assert {e["digest"] for e in store.list()} == {d1, d2}
        assert store.resolve(d1[:12]) == d1
        store.remove(d2)
        assert {e["digest"] for e in store.list()} == {d1}
        with pytest.raises(UnknownReference):
            store.get(d2)


class TestCorruption:
    def test_truncated_twobit_is_clean_error(self, store):
        digest = store.add(encode("ACGT" * 200), name="c")
        path = store.root / digest[:2] / f"{digest}.2bit"
        path.write_bytes(path.read_bytes()[:-16])
        store._refs.clear()  # drop the in-memory handle; hit the files
        with pytest.raises(StoreCorrupt):
            store.get(digest)
        assert not store.contains(digest)

    def test_reregistration_repairs(self, store):
        codes = encode("ACGT" * 200)
        digest = store.add(codes, name="c")
        path = store.root / digest[:2] / f"{digest}.2bit"
        path.write_bytes(b"garbage")
        store._refs.clear()
        assert store.add(codes, name="c") == digest
        np.testing.assert_array_equal(store.get(digest).codes, codes)


class TestSeedCache:
    def test_cold_builds_warm_loads(self, store, rng):
        codes = rng.integers(0, 4, size=4000).astype(np.uint8)
        digest = store.add(codes)
        assert store.load_seed_table(digest, k=13) is None
        table = store.seed_table(digest, k=13)
        # A fresh store instance sees only the persisted file.
        fresh = ReferenceStore(store.root)
        loaded = fresh.load_seed_table(digest, k=13)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.words, table.words)
        np.testing.assert_array_equal(loaded.positions, table.positions)
        assert loaded.span == table.span

    def test_matches_direct_build(self, store, rng):
        codes = rng.integers(0, 4, size=4000).astype(np.uint8)
        digest = store.add(codes)
        direct = build_seed_table(codes, k=13)
        cached = store.seed_table(digest, k=13)
        np.testing.assert_array_equal(cached.words, direct.words)
        np.testing.assert_array_equal(cached.positions, direct.positions)

    def test_params_key_tables_coexist(self, store, rng):
        codes = rng.integers(0, 4, size=4000).astype(np.uint8)
        digest = store.add(codes)
        t13 = store.seed_table(digest, k=13)
        t19 = store.seed_table(digest, k=19)
        assert t13.span == 13 and t19.span == 19
        fresh = ReferenceStore(store.root)
        assert fresh.load_seed_table(digest, k=13).span == 13
        assert fresh.load_seed_table(digest, k=19).span == 19

    def test_masked_is_separate_key(self, store):
        codes, mask = encode_with_mask("acgtacgtacgtacgt" + "ACGT" * 100)
        digest = store.add(codes, mask=mask)
        plain = store.seed_table(digest, k=13)
        masked = store.seed_table(digest, k=13, masked=True)
        # The soft-masked prefix is excluded only from the masked table.
        assert len(masked) < len(plain)
        fresh = ReferenceStore(store.root)
        assert len(fresh.load_seed_table(digest, k=13)) == len(plain)
        assert len(fresh.load_seed_table(digest, k=13, masked=True)) == len(masked)

    def test_torn_cache_file_degrades_to_rebuild(self, store, rng):
        codes = rng.integers(0, 4, size=4000).astype(np.uint8)
        digest = store.add(codes)
        table = store.seed_table(digest, k=13)
        cache = next((store.root / digest[:2]).glob("*.seeds-*.npz"))
        cache.write_bytes(b"not an npz")
        fresh = ReferenceStore(store.root)
        assert fresh.load_seed_table(digest, k=13) is None
        rebuilt = fresh.seed_table(digest, k=13)
        np.testing.assert_array_equal(rebuilt.words, table.words)


class TestDegradeObservability:
    """Cache degrades are advisory but must be counted and warned once."""

    @pytest.fixture()
    def live_obs(self, monkeypatch):
        from repro import obs
        from repro.store import seedcache

        registry, _tracer = obs.enable()
        monkeypatch.setattr(seedcache, "_degrade_warned", False)
        yield registry
        obs.disable()

    def _degrade_count(self, registry):
        return registry.counter("repro_store_seed_cache_degraded_total").value()

    def test_corrupt_cache_counts_and_warns_once(self, store, rng, live_obs):
        codes = rng.integers(0, 4, size=4000).astype(np.uint8)
        digest = store.add(codes)
        store.seed_table(digest, k=13)
        cache = next((store.root / digest[:2]).glob("*.seeds-*.npz"))
        cache.write_bytes(b"not an npz")
        before = self._degrade_count(live_obs)
        fresh = ReferenceStore(store.root)
        with pytest.warns(RuntimeWarning, match="degraded to a rebuild"):
            assert fresh.load_seed_table(digest, k=13) is None
        assert self._degrade_count(live_obs) == before + 1
        # Second degrade: counted again, but silent.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert fresh.load_seed_table(digest, k=13) is None
        assert self._degrade_count(live_obs) == before + 2

    def test_span_mismatch_counts(self, store, rng, live_obs):
        from repro.store.seedcache import load_table

        codes = rng.integers(0, 4, size=4000).astype(np.uint8)
        digest = store.add(codes)
        store.seed_table(digest, k=13)
        cache = next((store.root / digest[:2]).glob("*.seeds-*.npz"))
        before = self._degrade_count(live_obs)
        with pytest.warns(RuntimeWarning):
            assert load_table(cache, expect_span=19) is None
        assert self._degrade_count(live_obs) == before + 1

    def test_missing_file_is_a_silent_cold_miss(self, store, rng, live_obs):
        codes = rng.integers(0, 4, size=1000).astype(np.uint8)
        digest = store.add(codes)
        before = self._degrade_count(live_obs)
        assert store.load_seed_table(digest, k=13) is None
        assert self._degrade_count(live_obs) == before
