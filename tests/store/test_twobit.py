"""Unit tests for the 2-bit container format."""

import numpy as np
import pytest

from repro.genome.alphabet import encode, encode_with_mask
from repro.store.twobit import (
    HEADER_SIZE,
    TwoBitError,
    mask_from_runs,
    open_packed,
    pack_codes,
    payload_size,
    read_header,
    runs_from_mask,
    unpack_codes,
    write_twobit,
)


class TestPackRoundtrip:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 7, 8, 1023])
    def test_lengths(self, rng, n):
        codes = rng.integers(0, 4, size=n).astype(np.uint8)
        packed = pack_codes(codes)
        assert packed.size == payload_size(n)
        np.testing.assert_array_equal(unpack_codes(packed, n), codes)

    def test_n_runs_restored(self):
        codes = encode("ACGTNNNACGTN")
        runs = runs_from_mask(codes >= 4)
        assert runs == [(4, 7), (11, 12)]
        back = unpack_codes(pack_codes(codes), codes.size, n_runs=runs)
        np.testing.assert_array_equal(back, codes)

    def test_without_runs_ns_decode_as_a(self):
        codes = encode("NNAC")
        back = unpack_codes(pack_codes(codes), 4)
        np.testing.assert_array_equal(back, encode("AAAC"))

class TestMaskRuns:
    def test_roundtrip(self):
        _, mask = encode_with_mask("acGTacgTTa")
        runs = runs_from_mask(mask)
        assert runs == [(0, 2), (4, 7), (9, 10)]
        np.testing.assert_array_equal(mask_from_runs(runs, 10), mask)

    def test_empty(self):
        assert runs_from_mask(np.zeros(5, dtype=bool)) == []
        assert not mask_from_runs([], 5).any()


class TestFileFormat:
    def test_write_read(self, tmp_path, rng):
        codes = rng.integers(0, 4, size=301).astype(np.uint8)
        path = tmp_path / "x.2bit"
        write_twobit(path, codes)
        assert read_header(path) == 301
        packed = open_packed(path, 301)
        np.testing.assert_array_equal(unpack_codes(packed, 301), codes)

    def test_memmap_is_zero_copy(self, tmp_path):
        path = tmp_path / "x.2bit"
        write_twobit(path, encode("ACGT" * 100))
        assert isinstance(open_packed(path, 400), np.memmap)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.2bit"
        path.write_bytes(b"JUNK" + b"\x00" * (HEADER_SIZE - 4))
        with pytest.raises(TwoBitError):
            read_header(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "x.2bit"
        write_twobit(path, encode("ACGT" * 64))
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(TwoBitError):
            read_header(path)

    def test_short_header_detected(self, tmp_path):
        path = tmp_path / "x.2bit"
        path.write_bytes(b"R2")
        with pytest.raises(TwoBitError):
            read_header(path)
