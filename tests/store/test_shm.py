"""Shared-memory publication of hot reference codes."""

import numpy as np
import pytest

from repro.store import ShmPublisher, attach_codes, release_attachments


@pytest.fixture()
def publisher():
    pub = ShmPublisher()
    yield pub
    release_attachments()
    pub.close()


class TestPublishAttach:
    def test_roundtrip(self, publisher, rng):
        codes = rng.integers(0, 5, size=10_000).astype(np.uint8)
        handle = publisher.publish("k1", codes)
        assert handle is not None
        name, length = handle
        view = attach_codes(name, length)
        np.testing.assert_array_equal(view, codes)
        assert not view.flags.writeable

    def test_idempotent_per_key(self, publisher, rng):
        codes = rng.integers(0, 5, size=1000).astype(np.uint8)
        assert publisher.publish("k1", codes) == publisher.publish("k1", codes)

    def test_empty_codes_declined(self, publisher):
        assert publisher.publish("k0", np.zeros(0, dtype=np.uint8)) is None

    def test_byte_cap_declined(self, rng):
        pub = ShmPublisher(byte_cap=100)
        try:
            small = rng.integers(0, 4, size=50).astype(np.uint8)
            big = rng.integers(0, 4, size=200).astype(np.uint8)
            assert pub.publish("small", small) is not None
            assert pub.publish("big", big) is None
        finally:
            release_attachments()
            pub.close()

    def test_close_unlinks(self, rng):
        pub = ShmPublisher()
        codes = rng.integers(0, 4, size=100).astype(np.uint8)
        handle = pub.publish("k", codes)
        release_attachments()
        pub.close()
        with pytest.raises(FileNotFoundError):
            attach_codes(handle[0], handle[1])


class TestUnregisterFailureObservability:
    def test_failed_unregister_counts_and_warns_once(
        self, publisher, rng, monkeypatch
    ):
        from multiprocessing import resource_tracker

        from repro import obs
        from repro.store import shm

        registry, _tracer = obs.enable()
        try:
            monkeypatch.setattr(shm, "_unregister_warned", False)

            def boom(*_args, **_kwargs):
                raise RuntimeError("tracker gone")

            monkeypatch.setattr(resource_tracker, "unregister", boom)
            codes = rng.integers(0, 4, size=512).astype(np.uint8)
            name, length = publisher.publish("k-fail", codes)
            counter = registry.counter("repro_shm_attach_errors_total")
            before = counter.value()
            with pytest.warns(RuntimeWarning, match="could not unregister"):
                view = attach_codes(name, length)
            # The attach itself still succeeds.
            np.testing.assert_array_equal(view, codes)
            assert counter.value() == before + 1
        finally:
            obs.disable()
