"""Precomputed seed tables must be invisible to seeding results."""

import numpy as np
import pytest

from repro.seeding import build_seed_table, find_seeds


def _assert_same_matches(a, b):
    np.testing.assert_array_equal(a.target_pos, b.target_pos)
    np.testing.assert_array_equal(a.query_pos, b.query_pos)
    assert a.span == b.span


class TestTableEquivalence:
    def test_contiguous(self, rng):
        t = rng.integers(0, 4, size=5000).astype(np.uint8)
        q = rng.integers(0, 4, size=3000).astype(np.uint8)
        inline = find_seeds(t, q, k=13)
        table = build_seed_table(t, k=13)
        _assert_same_matches(find_seeds(t, q, k=13, target_table=table), inline)

    def test_spaced_pattern(self, rng):
        t = rng.integers(0, 4, size=5000).astype(np.uint8)
        q = rng.integers(0, 4, size=3000).astype(np.uint8)
        pattern = "1110110111"
        inline = find_seeds(t, q, spaced_pattern=pattern)
        table = build_seed_table(t, spaced_pattern=pattern)
        _assert_same_matches(
            find_seeds(t, q, spaced_pattern=pattern, target_table=table), inline
        )

    def test_with_ns_and_censoring(self, rng):
        t = rng.integers(0, 5, size=5000).astype(np.uint8)  # includes N=4
        q = rng.integers(0, 5, size=3000).astype(np.uint8)
        inline = find_seeds(t, q, k=9, max_word_count=4)
        table = build_seed_table(t, k=9)
        _assert_same_matches(
            find_seeds(t, q, k=9, max_word_count=4, target_table=table), inline
        )

    def test_query_mask_still_applies(self, rng):
        t = rng.integers(0, 4, size=4000).astype(np.uint8)
        q = rng.integers(0, 4, size=2000).astype(np.uint8)
        q_mask = np.zeros(q.size, dtype=bool)
        q_mask[:500] = True
        inline = find_seeds(t, q, k=11, query_mask=q_mask)
        table = build_seed_table(t, k=11)
        _assert_same_matches(
            find_seeds(t, q, k=11, query_mask=q_mask, target_table=table), inline
        )


class TestTableValidation:
    def test_span_mismatch_rejected(self, rng):
        t = rng.integers(0, 4, size=1000).astype(np.uint8)
        table = build_seed_table(t, k=13)
        with pytest.raises(ValueError, match="span"):
            find_seeds(t, t[:500], k=19, target_table=table)

    def test_target_mask_with_table_rejected(self, rng):
        t = rng.integers(0, 4, size=1000).astype(np.uint8)
        table = build_seed_table(t, k=13)
        with pytest.raises(ValueError, match="target_mask"):
            find_seeds(
                t,
                t[:500],
                k=13,
                target_mask=np.zeros(t.size, dtype=bool),
                target_table=table,
            )
