"""The store's defining gate: align-by-digest == align-by-bytes, bitwise.

Every transport the store touches — in-process service, the multiprocess
worker pool (shared-memory code segments + spec dispatch), and the
whole-genome job runner (store-handle shards) — must produce records
byte-identical to handing the service the raw sequences.
"""

import numpy as np
import pytest

from repro import api
from repro.service import AlignmentService
from repro.store import ReferenceStore


def _records(result):
    return [
        (a.target_start, a.target_end, a.query_start, a.query_end,
         a.score, a.cigar())
        for a in result.alignments
    ]


@pytest.fixture(scope="module")
def registered(tmp_path_factory, tiny_genome_pair):
    store = ReferenceStore(tmp_path_factory.mktemp("idstore"))
    t_digest = store.add(tiny_genome_pair.target)
    q_digest = store.add(tiny_genome_pair.query)
    return store, t_digest, q_digest


class TestServiceIdentity:
    def test_in_process(self, tiny_genome_pair, registered):
        store, t_digest, _ = registered
        pair = tiny_genome_pair
        with AlignmentService(store=store) as service:
            by_bytes = service.align(pair.target.codes, pair.query.codes)
            by_ref = service.align(query=pair.query.codes, target_ref=t_digest)
        assert _records(by_ref) == _records(by_bytes)

    def test_pool_workers(self, tiny_genome_pair, registered):
        store, t_digest, q_digest = registered
        pair = tiny_genome_pair
        with AlignmentService(store=store, pool_workers=4) as service:
            by_bytes = service.align(pair.target.codes, pair.query.codes)
            by_ref = service.align(target_ref=t_digest, query_ref=q_digest)
        assert _records(by_ref) == _records(by_bytes)

    def test_both_sides_by_ref_in_process(self, tiny_genome_pair, registered):
        store, t_digest, q_digest = registered
        pair = tiny_genome_pair
        with AlignmentService(store=store) as service:
            by_bytes = service.align(pair.target.codes, pair.query.codes)
            by_ref = service.align(target_ref=t_digest, query_ref=q_digest)
        assert _records(by_ref) == _records(by_bytes)

    def test_ref_without_store_rejected(self, tiny_genome_pair):
        with AlignmentService() as service:
            with pytest.raises(ValueError, match="store"):
                service.align(
                    query=tiny_genome_pair.query.codes, target_ref="0" * 64
                )

    def test_warm_seed_cache_still_identical(self, tiny_genome_pair, registered):
        # Second by-ref call hits the persisted seed table; results must
        # not move.
        store, t_digest, _ = registered
        pair = tiny_genome_pair
        with AlignmentService(store=store) as service:
            first = service.align(query=pair.query.codes, target_ref=t_digest)
        with AlignmentService(store=ReferenceStore(store.root)) as service:
            warm = service.align(query=pair.query.codes, target_ref=t_digest)
        assert _records(warm) == _records(first)


class TestApiIdentity:
    def test_align_accepts_stored_reference(self, tiny_genome_pair, registered):
        store, t_digest, q_digest = registered
        pair = tiny_genome_pair
        by_bytes = api.align(pair.target, pair.query)
        by_ref = api.align(store.get(t_digest), store.get(q_digest))
        assert _records(by_ref) == _records(by_bytes)

    def test_register_reference_roundtrip(self, tmp_path, tiny_genome_pair):
        stored = api.register_reference(
            tiny_genome_pair.target, store=tmp_path / "s"
        )
        np.testing.assert_array_equal(
            stored.codes, tiny_genome_pair.target.codes
        )
        # Idempotent, and raw-text registration preserves the soft-mask.
        again = api.register_reference(
            tiny_genome_pair.target, store=tmp_path / "s"
        )
        assert again.digest == stored.digest


class TestWgaIdentity:
    def test_run_wga_from_store(self, tmp_path, tiny_genome_pair, registered):
        store, t_digest, q_digest = registered
        pair = tiny_genome_pair
        from repro.jobs import JobOptions, run_wga

        job = JobOptions(chunk_size=16_384, workers=2, fsync=False)
        by_bytes = run_wga(
            pair.target, pair.query, job=job, job_dir=tmp_path / "a"
        )
        by_store = run_wga(
            store.get(t_digest), store.get(q_digest),
            job=job, job_dir=tmp_path / "b",
        )
        assert by_store.digest == by_bytes.digest  # same job identity
        assert [
            (a.target_start, a.target_end, a.query_start, a.query_end,
             a.score, a.cigar())
            for a in by_store.alignments
        ] == [
            (a.target_start, a.target_end, a.query_start, a.query_end,
             a.score, a.cigar())
            for a in by_bytes.alignments
        ]
