"""Unit tests for FastZ options and the ablation ladder."""

import pytest

from repro.core import FASTZ_FULL, FastzOptions, ablation_ladder
from repro.core.options import DEFAULT_BIN_EDGES, SCALED_BIN_EDGES


class TestOptions:
    def test_full_fastz_defaults(self):
        assert FASTZ_FULL.cyclic_buffers
        assert FASTZ_FULL.eager_traceback
        assert FASTZ_FULL.executor_trimming
        assert FASTZ_FULL.binning
        assert FASTZ_FULL.streams == 32
        assert FASTZ_FULL.eager_tile == 16

    def test_paper_bin_edges(self):
        assert DEFAULT_BIN_EDGES == (512, 2048, 8192, 32768)
        # 4x ladder.
        for a, b in zip(DEFAULT_BIN_EDGES, DEFAULT_BIN_EDGES[1:]):
            assert b == 4 * a
        for a, b in zip(SCALED_BIN_EDGES, SCALED_BIN_EDGES[1:]):
            assert b == 4 * a

    def test_validation(self):
        with pytest.raises(ValueError):
            FastzOptions(eager_tile=0)
        with pytest.raises(ValueError):
            FastzOptions(streams=0)
        with pytest.raises(ValueError):
            FastzOptions(bin_edges=(100, 100))
        with pytest.raises(ValueError):
            FastzOptions(bin_edges=())

    @pytest.mark.parametrize("tile", [0, -1, -16])
    def test_rejects_non_positive_eager_tile(self, tile):
        with pytest.raises(ValueError, match="eager_tile"):
            FastzOptions(eager_tile=tile)

    @pytest.mark.parametrize(
        "edges",
        [(2048, 512), (512, 2048, 1024), (512, 512, 2048), (), (0, 512), (-4, 16)],
    )
    def test_rejects_bad_bin_edges(self, edges):
        with pytest.raises(ValueError, match="bin_edges"):
            FastzOptions(bin_edges=edges)

    @pytest.mark.parametrize("engine", ["", "gpu", "Batched", "vectorised"])
    def test_rejects_unknown_engine(self, engine):
        with pytest.raises(ValueError, match="engine"):
            FastzOptions(engine=engine)

    def test_unknown_engine_error_lists_registry(self):
        """The message enumerates the live registry, not a frozen tuple."""
        from repro.align.engines import registered_engines

        with pytest.raises(ValueError) as err:
            FastzOptions(engine="quantum")
        for name in registered_engines():
            assert repr(name) in str(err.value)

    @pytest.mark.parametrize("batch_size", [0, -1, -256])
    def test_rejects_non_positive_batch_size(self, batch_size):
        with pytest.raises(ValueError, match="batch_size"):
            FastzOptions(batch_size=batch_size)

    def test_valid_variants_accepted(self):
        assert FastzOptions(engine="scalar").engine == "scalar"
        assert FastzOptions(engine="batched", batch_size=1).batch_size == 1
        assert FastzOptions(engine="wholebin").engine == "wholebin"
        assert FastzOptions(bin_edges=(7,)).bin_edges == (7,)

    def test_label(self):
        assert "cyclic" in FASTZ_FULL.label
        assert "naive" in FastzOptions(cyclic_buffers=False).label


class TestMappingRoundTrip:
    """One validation path for CLI flags, HTTP bodies and api kwargs."""

    def test_round_trip_identity(self):
        for options in (
            FASTZ_FULL,
            FastzOptions(engine="batched", batch_size=7, streams=4),
            FastzOptions(bin_edges=(7, 28), binning=False),
        ):
            assert FastzOptions.from_mapping(options.to_mapping()) == options

    def test_to_mapping_is_json_ready(self):
        import json

        mapping = FASTZ_FULL.to_mapping()
        assert json.loads(json.dumps(mapping)) == mapping
        # Tuples are rendered as lists so they survive a JSON round trip.
        assert isinstance(mapping["bin_edges"], list)

    def test_partial_mapping_uses_defaults(self):
        options = FastzOptions.from_mapping({"engine": "batched"})
        assert options.engine == "batched"
        assert options.batch_size == FASTZ_FULL.batch_size

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="enginee"):
            FastzOptions.from_mapping({"enginee": "batched"})

    def test_unknown_keys_all_named(self):
        with pytest.raises(ValueError) as excinfo:
            FastzOptions.from_mapping({"zzz": 1, "aaa": 2})
        assert "aaa" in str(excinfo.value) and "zzz" in str(excinfo.value)

    def test_bad_value_still_validated(self):
        with pytest.raises(ValueError, match="engine"):
            FastzOptions.from_mapping({"engine": "quantum"})

    def test_non_mapping_rejected(self):
        with pytest.raises(TypeError):
            FastzOptions.from_mapping([("engine", "batched")])


class TestLadder:
    def test_order_and_length(self):
        ladder = ablation_ladder()
        labels = [name for name, _ in ladder]
        assert labels == [
            "insp-exec+binning",
            "+cyclic",
            "+eager",
            "+trim (FastZ)",
            "FastZ-single-stream",
        ]

    def test_progressive_flags(self):
        ladder = dict(ablation_ladder())
        base = ladder["insp-exec+binning"]
        assert not base.cyclic_buffers and not base.eager_traceback
        assert not base.executor_trimming and base.binning
        assert ladder["+cyclic"].cyclic_buffers
        assert not ladder["+cyclic"].eager_traceback
        assert ladder["+eager"].eager_traceback
        assert not ladder["+eager"].executor_trimming
        fastz = ladder["+trim (FastZ)"]
        assert fastz.executor_trimming and fastz.streams == 32
        assert ladder["FastZ-single-stream"].streams == 1

    def test_penultimate_is_full_fastz(self):
        ladder = dict(ablation_ladder())
        fastz = ladder["+trim (FastZ)"]
        assert fastz == FASTZ_FULL

    def test_custom_streams(self):
        ladder = dict(ablation_ladder(streams=8))
        assert ladder["+trim (FastZ)"].streams == 8
        assert ladder["FastZ-single-stream"].streams == 1
