"""Tests of the executor's exact-recompute safety net and pipeline paths."""

import numpy as np
import pytest

from repro.align.wavefront import WavefrontResult, WavefrontStats, wavefront_extend
from repro.core import run_fastz
from repro.core.pipeline import _executor_side
from repro.genome import random_codes
from repro.workloads.profiles import BENCH_OPTIONS, bench_config


def _fake_inspection(real: WavefrontResult, score_delta: int) -> WavefrontResult:
    return WavefrontResult(
        score=real.score + score_delta,
        end_i=real.end_i,
        end_j=real.end_j,
        stats=real.stats,
    )


class TestExecutorSide:
    def test_agreement_no_fallback(self, rng, bench_scheme):
        base = random_codes(rng, 80)
        t = np.concatenate([base, random_codes(rng, 200)])
        q = np.concatenate([base.copy(), random_codes(rng, 200)])
        insp = wavefront_extend(t, q, bench_scheme)
        result, fell_back = _executor_side(t, q, insp, bench_scheme)
        assert not fell_back
        assert result.score == insp.score
        assert result.ops is not None

    def test_disagreement_triggers_exact_recompute(self, rng, bench_scheme):
        """If the trimmed rerun cannot reproduce the claimed optimum, the
        executor falls back to an exact (unpruned) recompute instead of
        emitting a wrong alignment."""
        base = random_codes(rng, 80)
        t = np.concatenate([base, random_codes(rng, 200)])
        q = np.concatenate([base.copy(), random_codes(rng, 200)])
        real = wavefront_extend(t, q, bench_scheme)
        doctored = _fake_inspection(real, score_delta=+7)  # unreachable score
        result, fell_back = _executor_side(t, q, doctored, bench_scheme)
        assert fell_back
        # The fallback is the exact optimum of the trimmed region.
        assert result.score == real.score
        assert result.ops is not None
        assert result.alignment().rescore(t, q, bench_scheme) == result.score


class TestPipelinePaths:
    def test_run_without_preselected_anchors(self, tiny_genome_pair):
        config = bench_config()
        res = run_fastz(
            tiny_genome_pair.target, tiny_genome_pair.query, config, BENCH_OPTIONS
        )
        assert len(res.tasks) > 20
        assert res.alignments

    def test_keep_extensions(self, tiny_genome_pair):
        config = bench_config()
        res = run_fastz(
            tiny_genome_pair.target,
            tiny_genome_pair.query,
            config,
            BENCH_OPTIONS,
            keep_extensions=True,
        )
        assert len(res.extensions) == len(res.tasks)

    def test_unique_alignments_dedups_duplicates(self, tiny_genome_pair):
        from dataclasses import replace

        # A tiny collapse window gives several anchors inside one segment,
        # all finding the same alignment box.
        config = replace(bench_config(), collapse_window=25, diag_band=10)
        res = run_fastz(
            tiny_genome_pair.target, tiny_genome_pair.query, config, BENCH_OPTIONS
        )
        assert len(res.unique_alignments()) < len(res.alignments)
