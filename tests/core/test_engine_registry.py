"""Engine-registry contract + registry-parametrized equivalence matrix.

Two things live here.  First, the registry API itself: built-ins are
always listed, unknown names fail with the valid names in the message,
custom engines round-trip through ``register_engine`` /
``unregister_engine`` and are immediately legal ``FastzOptions.engine``
values.  Second — the reason the registry exists — every registered
engine is pushed through the same bit-identity matrix against the scalar
baseline: direct pipeline, streaming overlap, multiprocessing pool,
mixed fleet backends and the windowed chunk path.  Registering an engine
buys you this suite for free; an engine that can't pass it doesn't
belong in the registry.
"""

from dataclasses import replace

import pytest

from repro.align.engines import (
    ExtensionEngine,
    get_engine,
    register_engine,
    registered_engines,
    unregister_engine,
)
from repro.core import FastzOptions, run_fastz, run_fastz_chunk
from repro.core.pipeline import extend_suffixes_shard, prepare_fastz
from repro.fleet import FleetScheduler, InProcessBackend, SimGpuBackend
from repro.genome import SegmentClass, build_pair
from repro.lastz import LastzConfig, run_gapped_lastz
from repro.lastz.pipeline import select_anchors
from repro.scoring import default_scheme
from repro.workloads.profiles import BENCH_OPTIONS, bench_config

from .test_pipeline_batched import _assert_runs_identical

BUILTINS = ("batched", "scalar", "wholebin")


class TestRegistryContract:
    def test_builtins_always_listed(self):
        assert set(BUILTINS) <= set(registered_engines())
        assert registered_engines() == tuple(sorted(registered_engines()))

    def test_get_engine_resolves_pipeline_callables(self):
        from repro.core import pipeline

        assert get_engine("scalar") is pipeline._extend_suffixes_scalar
        assert get_engine("batched") is pipeline.extend_suffixes_batched
        assert get_engine("wholebin") is pipeline.extend_suffixes_wholebin

    def test_engines_satisfy_protocol(self):
        for name in registered_engines():
            assert isinstance(get_engine(name), ExtensionEngine)

    def test_unknown_engine_lists_valid_names(self):
        with pytest.raises(ValueError, match="wholebin"):
            get_engine("gpu")
        with pytest.raises(ValueError, match="scalar"):
            get_engine("")

    def test_register_name_validation(self):
        with pytest.raises(ValueError):
            register_engine("")
        with pytest.raises(ValueError):
            register_engine(None)

    def test_builtins_cannot_be_unregistered(self):
        for name in BUILTINS:
            with pytest.raises(ValueError):
                unregister_engine(name)
        assert set(BUILTINS) <= set(registered_engines())

    def test_custom_engine_round_trip(self):
        """register -> listed -> options accept it -> dispatched -> gone."""
        calls = []

        @register_engine("test-echo")
        def echo(suffixes, scheme, options, tile):
            calls.append(len(suffixes))
            return get_engine("scalar")(suffixes, scheme, options, tile)

        try:
            assert "test-echo" in registered_engines()
            assert get_engine("test-echo") is echo
            options = FastzOptions(engine="test-echo")
            assert extend_suffixes_shard([], None, options, 16) == []
            # Empty shard short-circuits before dispatch elsewhere; call
            # the resolved engine directly to prove the wiring.
            assert get_engine(options.engine) is echo
        finally:
            unregister_engine("test-echo")
        assert "test-echo" not in registered_engines()
        with pytest.raises(ValueError):
            FastzOptions(engine="test-echo")
        with pytest.raises(ValueError):
            get_engine("test-echo")

    def test_options_error_tracks_registry(self):
        """The validation message is generated from the live registry, so
        a freshly registered name shows up in it immediately."""
        register_engine("zz-custom")(get_engine("scalar"))
        try:
            with pytest.raises(ValueError, match="zz-custom"):
                FastzOptions(engine="no-such-engine")
            FastzOptions(engine="zz-custom")  # and is itself accepted
        finally:
            unregister_engine("zz-custom")

    def test_unregister_unknown_is_noop(self):
        unregister_engine("never-registered")


# ---------------------------------------------------------------------------
# Equivalence matrix: every registered engine vs the scalar baseline.
# ---------------------------------------------------------------------------

ENGINES = registered_engines()


@pytest.fixture(scope="module")
def anchored(tiny_genome_pair):
    config = bench_config()
    lastz = run_gapped_lastz(tiny_genome_pair.target, tiny_genome_pair.query, config)
    return tiny_genome_pair, config, lastz.anchors


@pytest.fixture(scope="module")
def scalar_baseline(anchored):
    pair, config, anchors = anchored
    return run_fastz(
        pair.target, pair.query, config,
        replace(BENCH_OPTIONS, engine="scalar"), anchors=anchors,
    )


def _run(anchored, options, **kwargs):
    pair, config, anchors = anchored
    return run_fastz(pair.target, pair.query, config, options, anchors=anchors, **kwargs)


@pytest.fixture(scope="module")
def shard_prep():
    pair = build_pair(
        "registry",
        target_length=10_000,
        query_length=10_000,
        classes=[SegmentClass("s", 5, 80, 250, divergence=0.05)],
        rng=29,
    )
    config = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))
    prep = prepare_fastz(
        pair.target.codes, pair.query.codes, config, FastzOptions(engine="scalar")
    )
    expected = extend_suffixes_shard(
        prep.suffixes(), prep.scheme, prep.options, prep.tile
    )
    return prep, expected


@pytest.fixture(scope="module")
def chunk_setup():
    pair = build_pair(
        "registry-chunk",
        target_length=10_000,
        query_length=10_000,
        classes=[SegmentClass("m", 5, 80, 250, divergence=0.06, indel_rate=0.004)],
        rng=37,
    )
    config = LastzConfig(
        scheme=default_scheme(gap_extend=60, ydrop=2400), diag_band=150
    )
    anchors = select_anchors(pair.target, pair.query, config)
    scalar = run_fastz_chunk(
        pair.target, pair.query, config,
        FastzOptions(engine="scalar"), anchors=anchors,
    )
    return pair, config, anchors, scalar


def _assert_chunks_identical(scalar, got):
    assert got.n_anchors == scalar.n_anchors
    assert got.eager_count == scalar.eager_count
    assert got.window_fallbacks == scalar.window_fallbacks
    assert got.executor_fallbacks == scalar.executor_fallbacks
    assert len(got.records) == len(scalar.records)
    for (rt, rq, ra), (gt, gq, ga) in zip(scalar.records, got.records):
        assert (gt, gq) == (rt, rq)
        assert (ga.target_start, ga.target_end) == (ra.target_start, ra.target_end)
        assert (ga.query_start, ga.query_end) == (ra.query_start, ra.query_end)
        assert (ga.score, ga.ops) == (ra.score, ra.ops)


@pytest.mark.parametrize("engine", ENGINES)
class TestEngineMatrix:
    def test_pipeline_matches_scalar(self, anchored, scalar_baseline, engine):
        got = _run(anchored, replace(BENCH_OPTIONS, engine=engine))
        _assert_runs_identical(scalar_baseline, got)

    def test_streaming_matches_scalar(self, anchored, scalar_baseline, engine):
        """The bounded-queue overlap pipeline resolves the same registry
        name per chunk; streaming never changes results."""
        got = _run(anchored, replace(BENCH_OPTIONS, engine=engine), streaming=True)
        _assert_runs_identical(scalar_baseline, got)

    def test_pool_matches_scalar(self, anchored, scalar_baseline, engine):
        """Pool workers receive the engine name via pickled options and
        resolve it through the same registry in the child process."""
        got = _run(anchored, replace(BENCH_OPTIONS, engine=engine), workers=2)
        _assert_runs_identical(scalar_baseline, got)

    def test_fleet_matches_scalar(self, shard_prep, engine):
        prep, expected = shard_prep
        backends = [InProcessBackend("cpu0"), SimGpuBackend("gpu0")]
        with FleetScheduler(backends, hedge_after_s=None) as fleet:
            futures = [
                fleet.submit(
                    prep.suffixes(), prep.scheme,
                    replace(prep.options, engine=engine), prep.tile,
                    key=f"registry-{engine}-{i}",
                )
                for i in range(2)
            ]
            results = [f.result(timeout=300) for f in futures]
        assert all(r == expected for r in results)

    def test_chunk_matches_scalar(self, chunk_setup, engine):
        pair, config, anchors, scalar = chunk_setup
        got = run_fastz_chunk(
            pair.target, pair.query, config,
            FastzOptions(engine=engine), anchors=anchors,
        )
        _assert_chunks_identical(scalar, got)


class TestWholebinObservability:
    def test_per_bin_sweep_attribution(self, anchored):
        """A wholebin pipeline run must leave per-bin sweep counters:
        each executor bin reports its sweeps and slab/masked cell split,
        with masked <= slab (the dead-lane fraction is a fraction)."""
        from repro import obs
        from repro.obs import MetricsRegistry

        registry, _ = obs.enable(MetricsRegistry())
        try:
            _run(anchored, replace(BENCH_OPTIONS, engine="wholebin"))
            sweeps = dict_by_bin(registry.counter("repro_batch_bin_sweeps_total"))
            slab = dict_by_bin(registry.counter("repro_batch_bin_slab_cells_total"))
            masked = dict_by_bin(
                registry.counter("repro_batch_bin_masked_cells_total")
            )
            assert sweeps, "no per-bin sweep samples recorded"
            for bin_id, n in sweeps.items():
                assert n >= 1
                assert 0 <= masked.get(bin_id, 0) <= slab[bin_id]
        finally:
            obs.disable()


def dict_by_bin(counter):
    return {
        dict(key).get("bin"): child.value
        for key, child in counter.samples()
    }
