"""Unit tests for alignment-length binning."""

import numpy as np
from hypothesis import given, strategies as st

from repro.core import assign_bin, assign_bins, bin_histogram, bin_labels
from repro.core.options import DEFAULT_BIN_EDGES


class TestAssignBin:
    def test_eager_wins(self):
        assert assign_bin(10_000, eager=True) == 0

    def test_edges_inclusive(self):
        assert assign_bin(512, eager=False) == 1
        assert assign_bin(513, eager=False) == 2
        assert assign_bin(2048, eager=False) == 2
        assert assign_bin(8192, eager=False) == 3
        assert assign_bin(32768, eager=False) == 4

    def test_beyond_last_edge_clamped(self):
        assert assign_bin(100_000, eager=False) == 4

    def test_zero_extent(self):
        assert assign_bin(0, eager=False) == 1


class TestAssignBins:
    @given(
        st.lists(st.integers(0, 60_000), min_size=1, max_size=60),
        st.lists(st.booleans(), min_size=1, max_size=60),
    )
    def test_matches_scalar(self, extents, eager):
        n = min(len(extents), len(eager))
        extents = np.array(extents[:n])
        eager_arr = np.array(eager[:n])
        vec = assign_bins(extents, eager_arr)
        for k in range(n):
            assert vec[k] == assign_bin(int(extents[k]), bool(eager_arr[k]))

    def test_dtype(self):
        out = assign_bins(np.array([1, 600]), np.array([False, False]))
        assert out.dtype == np.int64


class TestHistogram:
    def test_counts(self):
        ids = np.array([0, 0, 1, 4, 4, 4])
        hist = bin_histogram(ids)
        assert hist.tolist() == [2, 1, 0, 0, 3]

    def test_empty_bins_present(self):
        hist = bin_histogram(np.array([0]))
        assert hist.shape == (len(DEFAULT_BIN_EDGES) + 1,)


class TestLabels:
    def test_default(self):
        labels = bin_labels()
        assert labels[0] == "eager"
        assert labels[1] == "<= 512"
        assert labels[2] == "512-2048"
        assert len(labels) == 5
