"""Scalar vs batched engine equivalence at the full-pipeline level.

``FastzOptions.engine="batched"`` swaps the per-anchor extension loop for
the lockstep struct-of-arrays engine (plus optional multiprocessing
sharding).  Every observable of :class:`FastzResult` — alignments, task
profiles, eager decisions, bin histogram, fallback count — must be
identical to the scalar run.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import FastzOptions, run_fastz
from repro.lastz import run_gapped_lastz
from repro.workloads.profiles import BENCH_OPTIONS, bench_config


@pytest.fixture(scope="module")
def anchored(tiny_genome_pair):
    config = bench_config()
    lastz = run_gapped_lastz(tiny_genome_pair.target, tiny_genome_pair.query, config)
    return tiny_genome_pair, config, lastz.anchors


def _run(anchored, options, workers=None):
    pair, config, anchors = anchored
    return run_fastz(
        pair.target, pair.query, config, options, anchors=anchors, workers=workers
    )


def _assert_runs_identical(scalar, batched):
    assert len(batched.tasks) == len(scalar.tasks)
    for ref, got in zip(scalar.tasks, batched.tasks):
        assert got == ref
    assert len(batched.alignments) == len(scalar.alignments)
    for ref, got in zip(scalar.alignments, batched.alignments):
        assert (got.target_start, got.target_end) == (ref.target_start, ref.target_end)
        assert (got.query_start, got.query_end) == (ref.query_start, ref.query_end)
        assert (got.score, got.cigar()) == (ref.score, ref.cigar())
    assert batched.executor_fallbacks == scalar.executor_fallbacks
    np.testing.assert_array_equal(batched.bin_counts(), scalar.bin_counts())


OPTION_VARIANTS = [
    pytest.param(BENCH_OPTIONS, id="bench-full"),
    pytest.param(replace(BENCH_OPTIONS, eager_traceback=False), id="no-eager"),
    pytest.param(replace(BENCH_OPTIONS, executor_trimming=False), id="no-trim"),
    pytest.param(replace(BENCH_OPTIONS, binning=False), id="no-binning"),
    pytest.param(replace(BENCH_OPTIONS, batch_size=13), id="tiny-batches"),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("options", OPTION_VARIANTS)
    def test_batched_matches_scalar(self, anchored, options):
        scalar = _run(anchored, replace(options, engine="scalar"))
        batched = _run(anchored, replace(options, engine="batched"))
        _assert_runs_identical(scalar, batched)

    def test_pool_matches_scalar(self, anchored):
        """Sharding batches across a multiprocessing pool preserves order
        and results exactly."""
        scalar = _run(anchored, replace(BENCH_OPTIONS, engine="scalar"))
        pooled = _run(anchored, BENCH_OPTIONS, workers=2)
        _assert_runs_identical(scalar, pooled)

    def test_bench_options_use_batched_engine(self):
        assert BENCH_OPTIONS.engine == "batched"

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            FastzOptions(engine="vectorised")
        with pytest.raises(ValueError):
            FastzOptions(batch_size=0)
