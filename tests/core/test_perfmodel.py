"""Unit tests for the FastZ performance model."""

import numpy as np
import pytest

from repro.align.wavefront import WavefrontStats
from repro.core import (
    FastzOptions,
    FastzTask,
    ablation_times,
    tasks_to_arrays,
    time_fastz,
    time_feng_baseline,
)
from repro.gpusim import Calibration, QV100_VOLTA, RTX_3080_AMPERE, TITAN_X_PASCAL


def _stats(cells, diagonals, width=20):
    steps = max(diagonals, cells // 28)
    return WavefrontStats(
        diagonals=diagonals,
        cells=cells,
        warp_steps=steps,
        boundary_cells=max(steps - diagonals, 0),
        max_width=width,
    )


def _make_tasks(n_eager=400, n_short=100, n_long=4):
    """A Table-2-shaped synthetic workload."""
    tasks = []
    for k in range(n_eager):
        tasks.append(
            FastzTask(
                anchor_t=k, anchor_q=k, score=900,
                insp_left=_stats(4000, 200), insp_right=_stats(4000, 200),
                left_end=(8, 8), right_end=(9, 9), eager=True,
                exec_left=None, exec_right=None,
                cols_left=0, cols_right=0, bin_id=0,
            )
        )
    for k in range(n_short):
        tasks.append(
            FastzTask(
                anchor_t=k, anchor_q=k, score=4000,
                insp_left=_stats(6000, 240), insp_right=_stats(6000, 240),
                left_end=(40, 41), right_end=(35, 36), eager=False,
                exec_left=_stats(900, 80), exec_right=_stats(800, 75),
                cols_left=41, cols_right=36, bin_id=2,
            )
        )
    for k in range(n_long):
        tasks.append(
            FastzTask(
                anchor_t=k, anchor_q=k, score=90000,
                insp_left=_stats(60000, 1600, width=40),
                insp_right=_stats(60000, 1600, width=40),
                left_end=(700, 710), right_end=(650, 655), eager=False,
                exec_left=_stats(30000, 1450), exec_right=_stats(28000, 1350),
                cols_left=712, cols_right=658, bin_id=4,
            )
        )
    return tasks_to_arrays(tasks)


@pytest.fixture(scope="module")
def arrays():
    return _make_tasks()


@pytest.fixture(scope="module")
def calib():
    return Calibration(modeled_memory_bytes=16e6)


DEV = RTX_3080_AMPERE


class TestTimeFastz:
    def test_breakdown_sums_to_total(self, arrays, calib):
        t = time_fastz(arrays, DEV, calib=calib)
        bd = t.breakdown()
        assert bd["inspector"] + bd["executor"] + bd["other"] == pytest.approx(1.0)
        assert t.total_seconds > 0

    def test_inspector_dominates(self, arrays, calib):
        # Figure 8: the inspector is the largest component for FastZ.
        t = time_fastz(arrays, DEV, calib=calib)
        bd = t.breakdown()
        assert bd["inspector"] > bd["executor"]

    def test_transfer_adds_other_time(self, arrays, calib):
        a = time_fastz(arrays, DEV, calib=calib, transfer_bytes=0)
        b = time_fastz(arrays, DEV, calib=calib, transfer_bytes=1e9)
        assert b.other_seconds > a.other_seconds
        assert b.inspector_seconds == a.inspector_seconds

    def test_no_binning_pays_alloc(self, arrays, calib):
        from dataclasses import replace

        binned = time_fastz(arrays, DEV, calib=calib)
        unbinned = time_fastz(
            arrays, DEV, FastzOptions(binning=False), calib=calib
        )
        assert unbinned.executor_seconds > binned.executor_seconds


class TestAblationLadder:
    def test_monotone_improvement(self, arrays, calib):
        """Each Figure 9 optimisation must help (or at least not hurt)."""
        for dev in (TITAN_X_PASCAL, QV100_VOLTA, DEV):
            table = ablation_times(arrays, dev, calib)
            labels = list(table)
            totals = [table[l].total_seconds for l in labels]
            # base > +cyclic > +eager > +trim; single-stream is slower than
            # full FastZ.
            assert totals[0] > totals[1] > totals[2] > totals[3]
            assert totals[4] > totals[3]

    def test_cyclic_removes_memory_boundedness(self, arrays, calib):
        table = ablation_times(arrays, DEV, calib)
        base = table["insp-exec+binning"]
        cyclic = table["+cyclic"]
        assert base.inspector_seconds / cyclic.inspector_seconds > 2.0

    def test_eager_cuts_executor(self, arrays, calib):
        table = ablation_times(arrays, DEV, calib)
        assert (
            table["+eager"].executor_seconds
            < table["+cyclic"].executor_seconds
        )

    def test_trim_cuts_executor(self, arrays, calib):
        table = ablation_times(arrays, DEV, calib)
        assert (
            table["+trim (FastZ)"].executor_seconds
            < table["+eager"].executor_seconds
        )

    def test_device_ordering_for_full_fastz(self, arrays, calib):
        """Figure 7: Pascal < Volta ~< Ampere for the full configuration."""
        times = {
            dev.name: time_fastz(arrays, dev, calib=calib).total_seconds
            for dev in (TITAN_X_PASCAL, QV100_VOLTA, DEV)
        }
        assert times["Titan X"] > times["RTX 3080"]
        assert times["Titan X"] > times["QV100"]


class TestFengBaseline:
    def test_sync_dominated(self, arrays, calib):
        t = time_feng_baseline(arrays, DEV, calib)
        sync_floor = arrays.insp_diagonals.sum() * calib.feng_sync_us * 1e-6
        assert t >= sync_floor

    def test_slower_than_fastz(self, arrays, calib):
        fastz = time_fastz(arrays, DEV, calib=calib).total_seconds
        feng = time_feng_baseline(arrays, DEV, calib)
        assert feng > 10 * fastz

    def test_scales_with_tasks(self, calib):
        small = _make_tasks(n_eager=50, n_short=10, n_long=1)
        big = _make_tasks(n_eager=500, n_short=100, n_long=2)
        assert time_feng_baseline(big, DEV, calib) > time_feng_baseline(
            small, DEV, calib
        )


class TestEmptyWorkload:
    def test_empty_arrays(self, calib):
        arrays = tasks_to_arrays([])
        t = time_fastz(arrays, DEV, calib=calib)
        assert t.total_seconds >= 0
        assert t.executor_seconds == 0.0
