"""Unit tests for the FastZ inspector-executor pipeline."""

import numpy as np
import pytest

from repro.core import FastzOptions, run_fastz
from repro.lastz import run_gapped_lastz
from repro.workloads.profiles import BENCH_OPTIONS, bench_config


@pytest.fixture(scope="module")
def runs(tiny_genome_pair):
    config = bench_config()
    lastz = run_gapped_lastz(
        tiny_genome_pair.target, tiny_genome_pair.query, config, work_reduction=False
    )
    fastz = run_fastz(
        tiny_genome_pair.target,
        tiny_genome_pair.query,
        config,
        BENCH_OPTIONS,
        anchors=lastz.anchors,
    )
    return lastz, fastz


class TestCorrectnessContract:
    def test_same_task_count(self, runs):
        lastz, fastz = runs
        assert len(fastz.tasks) == len(lastz.tasks)

    def test_scores_never_below_reference(self, runs):
        """Paper §3.4: FastZ explores the same or a strict superset, so its
        alignments are identical or occasionally longer/better."""
        lastz, fastz = runs
        for ref, fz in zip(lastz.tasks, fastz.tasks):
            assert (fz.anchor_t, fz.anchor_q) == (ref.anchor_t, ref.anchor_q)
            assert fz.score >= ref.score

    def test_scores_almost_always_identical(self, runs):
        lastz, fastz = runs
        same = sum(
            1 for ref, fz in zip(lastz.tasks, fastz.tasks) if fz.score == ref.score
        )
        assert same / len(fastz.tasks) > 0.99

    def test_alignment_sets_match(self, runs):
        lastz, fastz = runs
        fz_boxes = {
            (a.target_start, a.target_end, a.query_start, a.query_end)
            for a in fastz.alignments
        }
        for a in lastz.alignments:
            box = (a.target_start, a.target_end, a.query_start, a.query_end)
            assert box in fz_boxes

    def test_alignments_rescore(self, runs, tiny_genome_pair):
        _, fastz = runs
        scheme = bench_config().scheme
        t = tiny_genome_pair.target.codes
        q = tiny_genome_pair.query.codes
        for a in fastz.alignments[:10]:
            assert a.rescore(t, q, scheme) == a.score

    def test_no_executor_fallbacks(self, runs):
        _, fastz = runs
        assert fastz.executor_fallbacks == 0


class TestEagerTraceback:
    def test_eager_majority(self, runs):
        _, fastz = runs
        # The tiny pair plants mostly eager-class segments.
        assert fastz.eager_fraction > 0.5

    def test_eager_tasks_have_no_executor_profile(self, runs):
        _, fastz = runs
        for task in fastz.tasks:
            if task.eager:
                assert task.exec_left is None and task.exec_right is None
                assert task.bin_id == 0
            else:
                assert task.exec_left is not None and task.exec_right is not None
                assert task.bin_id >= 1

    def test_eager_spans_fit_tile(self, runs):
        _, fastz = runs
        tile = BENCH_OPTIONS.eager_tile
        for task in fastz.tasks:
            if task.eager:
                assert max(task.left_end) <= tile
                assert max(task.right_end) <= tile


class TestVariants:
    def test_eager_disabled_sends_all_to_executor(self, tiny_genome_pair):
        config = bench_config()
        options = FastzOptions(
            eager_traceback=False, bin_edges=BENCH_OPTIONS.bin_edges
        )
        res = run_fastz(tiny_genome_pair.target, tiny_genome_pair.query, config, options)
        assert res.eager_count == 0
        assert all(t.exec_left is not None for t in res.tasks)

    def test_untrimmed_executor_matches_trimmed_results(self, tiny_genome_pair):
        config = bench_config()
        trimmed = run_fastz(
            tiny_genome_pair.target, tiny_genome_pair.query, config, BENCH_OPTIONS
        )
        from dataclasses import replace

        untrimmed = run_fastz(
            tiny_genome_pair.target,
            tiny_genome_pair.query,
            config,
            replace(BENCH_OPTIONS, executor_trimming=False),
        )
        assert [t.score for t in trimmed.tasks] == [t.score for t in untrimmed.tasks]
        # Untrimmed executors re-explore the full search space.
        a = trimmed.arrays
        b = untrimmed.arrays
        assert b.exec_cells[~b.eager].sum() > a.exec_cells[~a.eager].sum()


class TestProfiles:
    def test_bin_counts_sum(self, runs):
        _, fastz = runs
        assert fastz.bin_counts().sum() == len(fastz.tasks)

    def test_arrays_consistency(self, runs):
        _, fastz = runs
        arr = fastz.arrays
        assert len(arr) == len(fastz.tasks)
        # Side arrays interleave left/right and sum to the task totals.
        assert arr.side_insp_cells.reshape(-1, 2).sum(axis=1).tolist() == \
            arr.insp_cells.tolist()
        assert arr.side_cols.reshape(-1, 2).sum(axis=1).tolist() == \
            arr.alignment_cols.tolist()

    def test_trimmed_executor_cheaper_than_inspection(self, runs):
        _, fastz = runs
        arr = fastz.arrays
        assert arr.exec_cells.sum() < arr.insp_cells.sum()

    def test_unique_alignments_dedup(self, runs):
        _, fastz = runs
        unique = fastz.unique_alignments()
        boxes = [(a.target_start, a.target_end, a.query_start, a.query_end) for a in unique]
        assert len(boxes) == len(set(boxes))
