"""Unit tests for the multi-GPU extension (paper §6)."""

import numpy as np
import pytest

from repro.core import (
    FASTZ_FULL,
    greedy_partition,
    partition_arrays,
    time_fastz,
    time_fastz_multi_gpu,
)
from repro.core.multigpu import partition_loads
from repro.gpusim import Calibration, RTX_3080_AMPERE

from .test_perfmodel import _make_tasks


@pytest.fixture(scope="module")
def arrays():
    return _make_tasks(n_eager=400, n_short=100, n_long=4)


@pytest.fixture(scope="module")
def calib():
    return Calibration(modeled_memory_bytes=16e6)


class TestPartition:
    def test_round_robin_counts(self, arrays):
        parts = partition_arrays(arrays, 4)
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == len(arrays)
        assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1

    def test_side_arrays_follow_tasks(self, arrays):
        parts = partition_arrays(arrays, 3)
        for p in parts:
            assert p.side_insp_cells.shape[0] == 2 * len(p)
            assert p.side_insp_cells.reshape(-1, 2).sum(axis=1).tolist() == \
                p.insp_cells.tolist()

    def test_work_conserved(self, arrays):
        parts = partition_arrays(arrays, 5)
        assert sum(int(p.insp_cells.sum()) for p in parts) == int(
            arrays.insp_cells.sum()
        )

    def test_single_partition_identity(self, arrays):
        (only,) = partition_arrays(arrays, 1)
        assert np.array_equal(only.insp_cells, arrays.insp_cells)

    def test_validation(self, arrays):
        with pytest.raises(ValueError):
            partition_arrays(arrays, 0)


class TestGreedyPartition:
    def test_covers_all_indices_disjointly(self):
        weights = [5.0, 1.0, 3.0, 2.0, 4.0, 2.0]
        parts = greedy_partition(weights, 3)
        assert len(parts) == 3
        flat = sorted(i for part in parts for i in part)
        assert flat == list(range(len(weights)))

    def test_lpt_balances_within_heaviest_item(self):
        # Classic LPT bound: max load <= optimal + heaviest item; for a
        # well-mixed weight set the spread stays below the heaviest weight.
        weights = [7.0, 5.0, 4.0, 3.0, 3.0, 2.0, 2.0, 1.0, 1.0]
        parts = greedy_partition(weights, 3)
        loads = [sum(weights[i] for i in part) for part in parts]
        assert max(loads) - min(loads) <= max(weights)

    def test_heaviest_items_spread_first(self):
        parts = greedy_partition([10.0, 9.0, 8.0, 0.1, 0.1, 0.1], 3)
        heavy_home = [part for part in parts if any(i < 3 for i in part)]
        assert len(heavy_home) == 3  # one heavyweight per part

    def test_deterministic_on_ties(self):
        weights = [2.0] * 6
        assert greedy_partition(weights, 2) == greedy_partition(weights, 2)

    def test_more_parts_than_items(self):
        parts = greedy_partition([1.0, 2.0], 4)
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            greedy_partition([1.0], 0)
        with pytest.raises(ValueError):
            greedy_partition([[1.0], [2.0]], 2)
        with pytest.raises(ValueError):
            greedy_partition([1.0, -2.0], 2)


class TestMultiGpuTiming:
    def test_two_gpus_faster_than_one(self, arrays, calib):
        single = time_fastz(arrays, RTX_3080_AMPERE, FASTZ_FULL, calib)
        multi = time_fastz_multi_gpu(arrays, RTX_3080_AMPERE, 2, calib=calib)
        assert multi.total_seconds < single.total_seconds

    def test_scaling_efficiency_below_one(self, arrays, calib):
        single = time_fastz(arrays, RTX_3080_AMPERE, FASTZ_FULL, calib)
        multi = time_fastz_multi_gpu(
            arrays, RTX_3080_AMPERE, 4, calib=calib, transfer_bytes=1e5
        )
        eff = multi.scaling_efficiency(single)
        assert 0.0 < eff <= 1.05  # never superlinear (modulo rounding)

    def test_diminishing_returns(self, arrays, calib):
        times = [
            time_fastz_multi_gpu(
                arrays, RTX_3080_AMPERE, n, calib=calib, transfer_bytes=1e5
            ).total_seconds
            for n in (1, 2, 4, 8)
        ]
        assert times[0] > times[1] > times[2]
        # Long-task critical paths bound the benefit eventually.
        gain_12 = times[0] / times[1]
        gain_48 = times[2] / times[3]
        assert gain_12 > gain_48

    def test_broadcast_cost_counted(self, arrays, calib):
        no_xfer = time_fastz_multi_gpu(arrays, RTX_3080_AMPERE, 4, calib=calib)
        with_xfer = time_fastz_multi_gpu(
            arrays, RTX_3080_AMPERE, 4, calib=calib, transfer_bytes=1e9
        )
        assert with_xfer.broadcast_seconds > no_xfer.broadcast_seconds
        assert with_xfer.total_seconds > no_xfer.total_seconds

    def test_per_gpu_records(self, arrays, calib):
        multi = time_fastz_multi_gpu(arrays, RTX_3080_AMPERE, 3, calib=calib)
        assert len(multi.per_gpu) == 3
        assert all(t.device == "RTX 3080" for t in multi.per_gpu)


class TestPartitionLoads:
    """partition_loads — the shared LPT helper behind the job scheduler's
    plan_balance and the service worker pool's shard planner."""

    def test_loads_match_parts(self):
        weights = [5.0, 1.0, 3.0, 2.0, 4.0, 2.0]
        parts, loads = partition_loads(weights, 3)
        assert loads == [sum(weights[i] for i in part) for part in parts]
        assert sum(loads) == pytest.approx(sum(weights))

    def test_agrees_with_greedy_partition(self):
        weights = [7, 5, 4, 3, 3, 2, 2, 1, 1]
        parts, _ = partition_loads(weights, 3)
        assert parts == greedy_partition([float(w) for w in weights], 3)

    def test_accepts_integer_weights(self):
        parts, loads = partition_loads([4, 4, 2], 2)
        assert all(isinstance(load, float) for load in loads)
        assert sorted(loads) == [4.0, 6.0]
