"""Streaming seed→extend pipeline: bit-identity with the barrier runs."""

import threading

import numpy as np
import pytest

from repro.core import (
    FASTZ_FULL,
    FastzOptions,
    StreamAborted,
    run_fastz,
    run_fastz_streaming,
)
from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.lastz.pipeline import select_anchors
from repro.scoring import default_scheme
from repro.seeding import IncrementalCollapser, SeedMatches, collapse_diagonal
from repro.workloads.profiles import BENCH_OPTIONS, bench_config


def result_key(result):
    """Everything the correctness contract promises, as comparable data."""
    return {
        "alignments": [
            (a.target_start, a.target_end, a.query_start, a.query_end, a.score,
             a.cigar())
            for a in result.alignments
        ],
        "tasks": [
            (t.anchor_t, t.anchor_q, t.score, t.eager) for t in result.tasks
        ],
        "anchor_t": result.anchors.target_pos.tolist(),
        "anchor_q": result.anchors.query_pos.tolist(),
        "fallbacks": result.executor_fallbacks,
    }


@pytest.fixture(scope="module")
def small_pair():
    return build_pair(
        "stream",
        target_length=15_000,
        query_length=15_000,
        classes=[SegmentClass("s", 8, 60, 220, divergence=0.05, indel_rate=0.002)],
        rng=23,
    )


@pytest.fixture(scope="module")
def small_config():
    return LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))


class TestBitIdentity:
    @pytest.mark.parametrize(
        "options", [FASTZ_FULL, BENCH_OPTIONS], ids=["scalar", "batched"]
    )
    def test_matches_barrier_run(self, small_pair, small_config, options):
        barrier = run_fastz(
            small_pair.target, small_pair.query, small_config, options
        )
        streamed = run_fastz_streaming(
            small_pair.target, small_pair.query, small_config, options,
            chunk_bp=2048,
        )
        assert result_key(streamed) == result_key(barrier)

    def test_chunk_size_never_changes_results(self, small_pair, small_config):
        runs = [
            run_fastz_streaming(
                small_pair.target, small_pair.query, small_config, FASTZ_FULL,
                chunk_bp=chunk_bp, max_batch_anchors=batch,
            )
            for chunk_bp, batch in [(977, 7), (4096, 1024), (1 << 20, 2)]
        ]
        assert result_key(runs[1]) == result_key(runs[0])
        assert result_key(runs[2]) == result_key(runs[0])

    def test_banded_collapse_matches_barrier(self, small_pair):
        config = LastzConfig(
            scheme=default_scheme(gap_extend=60, ydrop=2400), diag_band=150
        )
        barrier = run_fastz(small_pair.target, small_pair.query, config, FASTZ_FULL)
        streamed = run_fastz_streaming(
            small_pair.target, small_pair.query, config, FASTZ_FULL, chunk_bp=2048
        )
        assert result_key(streamed) == result_key(barrier)

    def test_preselected_anchors_path(self, small_pair, small_config):
        anchors = select_anchors(
            small_pair.target, small_pair.query, small_config
        )
        barrier = run_fastz(
            small_pair.target, small_pair.query, small_config, FASTZ_FULL,
            anchors=anchors,
        )
        streamed = run_fastz_streaming(
            small_pair.target, small_pair.query, small_config, FASTZ_FULL,
            anchors=anchors,
        )
        assert result_key(streamed) == result_key(barrier)

    def test_worker_pool_matches_serial(self, small_pair, small_config):
        serial = run_fastz_streaming(
            small_pair.target, small_pair.query, small_config, FASTZ_FULL,
            chunk_bp=4096,
        )
        pooled = run_fastz_streaming(
            small_pair.target, small_pair.query, small_config, FASTZ_FULL,
            chunk_bp=4096, workers=2,
        )
        assert result_key(pooled) == result_key(serial)

    def test_tiny_genome_pair_bench_profile(self, tiny_genome_pair):
        config = bench_config()
        barrier = run_fastz(
            tiny_genome_pair.target, tiny_genome_pair.query, config, BENCH_OPTIONS
        )
        streamed = run_fastz_streaming(
            tiny_genome_pair.target, tiny_genome_pair.query, config, BENCH_OPTIONS,
            chunk_bp=8192,
        )
        assert result_key(streamed) == result_key(barrier)


class TestPartials:
    def test_partial_union_equals_final(self, small_pair, small_config):
        partials = []
        result = run_fastz_streaming(
            small_pair.target, small_pair.query, small_config, FASTZ_FULL,
            chunk_bp=2048, max_batch_anchors=16, on_partial=partials.append,
        )
        assert len(partials) >= 2

        # Sequence numbers count up from 0; done_anchors is cumulative.
        assert [p.seq for p in partials] == list(range(len(partials)))
        assert [p.done_anchors for p in partials] == list(
            np.cumsum([p.n_anchors for p in partials])
        )
        assert partials[-1].done_anchors == len(result.tasks)
        assert [p.wall_s for p in partials] == sorted(p.wall_s for p in partials)

        streamed_boxes = {
            (a.target_start, a.target_end, a.query_start, a.query_end, a.score,
             a.cigar())
            for p in partials
            for a in p.alignments
        }
        final_boxes = {
            (a.target_start, a.target_end, a.query_start, a.query_end, a.score,
             a.cigar())
            for a in result.alignments
        }
        assert streamed_boxes == final_boxes

    def test_eager_counts_sum(self, small_pair, small_config):
        partials = []
        result = run_fastz_streaming(
            small_pair.target, small_pair.query, small_config, FASTZ_FULL,
            chunk_bp=2048, max_batch_anchors=16, on_partial=partials.append,
        )
        assert sum(p.eager for p in partials) == result.eager_count


class TestAbort:
    def test_should_abort_raises(self, small_pair, small_config):
        with pytest.raises(StreamAborted):
            run_fastz_streaming(
                small_pair.target, small_pair.query, small_config, FASTZ_FULL,
                chunk_bp=2048, should_abort=lambda: True,
            )

    def test_abort_mid_stream_leaves_no_producer(self, small_pair, small_config):
        before = {t.ident for t in threading.enumerate()}
        seen = []

        def abort_after_first():
            return len(seen) >= 1

        with pytest.raises(StreamAborted):
            run_fastz_streaming(
                small_pair.target, small_pair.query, small_config, FASTZ_FULL,
                chunk_bp=1024, max_batch_anchors=4,
                on_partial=seen.append, should_abort=abort_after_first,
            )
        # The producer thread must be joined on the abort path, not leaked.
        leaked = [
            t for t in threading.enumerate()
            if t.ident not in before and t.name == "fastz-stream-seed"
        ]
        assert leaked == []


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"chunk_bp": 0}, {"queue_depth": 0}, {"max_batch_anchors": -1}],
    )
    def test_bad_knobs_rejected(self, small_pair, small_config, kwargs):
        with pytest.raises(ValueError):
            run_fastz_streaming(
                small_pair.target, small_pair.query, small_config, FASTZ_FULL,
                **kwargs,
            )


class TestIncrementalCollapser:
    """Segmented drains reproduce the one-shot collapse scan exactly."""

    @pytest.mark.parametrize("diag_band", [0, 150])
    @pytest.mark.parametrize("seed_rng", [0, 1, 2])
    def test_segmented_equals_one_shot(self, diag_band, seed_rng):
        rng = np.random.default_rng(seed_rng)
        n = 4000
        span = 19
        t = rng.integers(0, 30_000, size=n, dtype=np.int64)
        q = rng.integers(0, 30_000, size=n, dtype=np.int64)
        seeds = SeedMatches(target_pos=t, query_pos=q, span=span)
        one_shot = collapse_diagonal(seeds, window=500, diag_band=diag_band)

        # Feed in ascending-diagonal groups with a drain between each —
        # the streaming contract (everything added after a drain lies at
        # or above its frontier).
        diag = t - q
        order = np.argsort(diag, kind="stable")
        t_sorted, q_sorted, diag_sorted = t[order], q[order], diag[order]
        collapser = IncrementalCollapser(window=500, diag_band=diag_band, span=span)
        out_t, out_q = [], []
        cuts = [-25_000, -10_000, 0, 4_000, 17_000]
        lo = 0
        for frontier in cuts:
            hi = int(np.searchsorted(diag_sorted, frontier, side="left"))
            collapser.add(t_sorted[lo:hi], q_sorted[lo:hi])
            drained = collapser.drain(frontier)
            out_t.append(drained.target_pos)
            out_q.append(drained.query_pos)
            lo = hi
        collapser.add(t_sorted[lo:], q_sorted[lo:])
        final = collapser.drain(None)
        out_t.append(final.target_pos)
        out_q.append(final.query_pos)

        assert np.concatenate(out_t).tolist() == one_shot.target_pos.tolist()
        assert np.concatenate(out_q).tolist() == one_shot.query_pos.tolist()

    def test_pending_counts(self):
        collapser = IncrementalCollapser(window=500, diag_band=0, span=19)
        assert collapser.pending == 0
        collapser.add(np.array([5, 6], dtype=np.int64), np.array([1, 2], dtype=np.int64))
        assert collapser.pending == 2
        collapser.drain(None)
        assert collapser.pending == 0
