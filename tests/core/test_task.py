"""Unit tests for task profiles and their array views."""

from repro.align.wavefront import WavefrontStats
from repro.core import FastzTask, tasks_to_arrays


def _stats(cells=100, diagonals=20, steps=25, boundary=5, width=8):
    return WavefrontStats(
        diagonals=diagonals,
        cells=cells,
        warp_steps=steps,
        boundary_cells=boundary,
        max_width=width,
    )


def _task(eager=False, score=500, l_end=(10, 12), r_end=(8, 9), bin_id=1):
    return FastzTask(
        anchor_t=1000,
        anchor_q=2000,
        score=score,
        insp_left=_stats(cells=100),
        insp_right=_stats(cells=200),
        left_end=l_end,
        right_end=r_end,
        eager=eager,
        exec_left=None if eager else _stats(cells=30),
        exec_right=None if eager else _stats(cells=40),
        cols_left=0 if eager else 12,
        cols_right=0 if eager else 10,
        bin_id=0 if eager else bin_id,
    )


class TestFastzTask:
    def test_spans(self):
        t = _task()
        assert t.target_span == 18
        assert t.query_span == 21
        assert t.extent == 21

    def test_inspector_sums(self):
        t = _task()
        assert t.inspector_cells == 300
        assert t.inspector_steps == 50
        assert t.inspector_boundary == 10
        assert t.inspector_diagonals == 40

    def test_executor_sums(self):
        t = _task()
        assert t.executor_cells == 70
        assert t.executor_steps == 50

    def test_eager_task_executor_zero(self):
        t = _task(eager=True)
        assert t.executor_cells == 0
        assert t.executor_steps == 0
        assert t.executor_boundary == 0
        assert t.alignment_cols == 0


class TestTaskArrays:
    def test_lengths(self):
        arrays = tasks_to_arrays([_task(), _task(eager=True), _task()])
        assert len(arrays) == 3
        assert arrays.side_insp_cells.shape == (6,)

    def test_side_interleaving(self):
        arrays = tasks_to_arrays([_task()])
        assert arrays.side_insp_cells.tolist() == [100, 200]
        assert arrays.side_exec_cells.tolist() == [30, 40]
        assert arrays.side_cols.tolist() == [12, 10]
        assert arrays.side_span.tolist() == [12, 9]

    def test_side_broadcasts(self):
        arrays = tasks_to_arrays([_task(eager=True), _task()])
        assert arrays.side_eager.tolist() == [True, True, False, False]
        assert arrays.side_bin_id.tolist() == [0, 0, 1, 1]
        assert arrays.side_extent.tolist() == [21, 21, 21, 21]

    def test_rect_is_diag_times_width(self):
        arrays = tasks_to_arrays([_task()])
        assert arrays.side_insp_rect.tolist() == [20 * 8, 20 * 8]

    def test_empty_task_list(self):
        arrays = tasks_to_arrays([])
        assert len(arrays) == 0
        assert arrays.side_insp_cells.shape == (0,)
