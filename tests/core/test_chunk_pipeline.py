"""Unit tests for the chunk-scoped pipeline entry (``run_fastz_chunk``).

The contract: extending a chunk's anchors inside window-clipped suffixes
produces *exactly* the alignments the full-sequence pipeline produces for
those anchors.  Where the window could have truncated a wavefront, the
seam guard must detect it (``window_fallbacks``) and transparently
re-extend on the full sequences.
"""

import numpy as np
import pytest

from repro.core import FastzOptions, run_fastz, run_fastz_chunk
from repro.genome import SegmentClass, build_pair
from repro.lastz import LastzConfig
from repro.lastz.pipeline import select_anchors
from repro.scoring import default_scheme


@pytest.fixture(scope="module")
def setup():
    pair = build_pair(
        "chunk",
        target_length=16_000,
        query_length=16_000,
        classes=[
            SegmentClass("mid", 8, 80, 250, divergence=0.06, indel_rate=0.004)
        ],
        rng=11,
    )
    config = LastzConfig(
        scheme=default_scheme(gap_extend=60, ydrop=2400), diag_band=150
    )
    anchors = select_anchors(pair.target, pair.query, config)
    reference = run_fastz(pair.target, pair.query, config, anchors=anchors)
    return pair, config, anchors, reference


def reference_records(reference, scheme):
    # Tasks and alignments run in the same (prepared) anchor order;
    # alignments exist only for tasks at or above the gapped threshold.
    records = {}
    alignments = iter(reference.alignments)
    for task in reference.tasks:
        if task.score >= scheme.gapped_threshold:
            a = next(alignments)
            records[(task.anchor_t, task.anchor_q)] = (
                a.target_start, a.target_end, a.query_start, a.query_end,
                a.score, a.ops,
            )
    return records


class TestChunkEquivalence:
    def test_full_window_matches_run_fastz(self, setup):
        pair, config, anchors, reference = setup
        chunk = run_fastz_chunk(pair.target, pair.query, config, anchors=anchors)
        assert chunk.n_anchors == len(anchors)
        assert chunk.window_fallbacks == 0
        got = {
            (t, q): (
                a.target_start, a.target_end, a.query_start, a.query_end,
                a.score, a.ops,
            )
            for t, q, a in chunk.records
        }
        assert got == reference_records(reference, config.scheme)

    def test_generous_window_no_fallbacks(self, setup):
        pair, config, anchors, reference = setup
        mid_t = int(np.median(anchors.target_pos))
        mid_q = int(np.median(anchors.query_pos))
        keep = (anchors.target_pos <= mid_t) & (anchors.query_pos <= mid_q)
        subset = anchors.take(np.flatnonzero(keep))
        chunk = run_fastz_chunk(
            pair.target,
            pair.query,
            config,
            anchors=subset,
            t_window=(0, min(len(pair.target), mid_t + 4_096)),
            q_window=(0, min(len(pair.query), mid_q + 4_096)),
        )
        assert chunk.window_fallbacks == 0
        ref = reference_records(reference, config.scheme)
        for t, q, a in chunk.records:
            assert ref[(t, q)] == (
                a.target_start, a.target_end, a.query_start, a.query_end,
                a.score, a.ops,
            )

    def test_degenerate_window_falls_back_and_stays_identical(self, setup):
        # Windows only a few bases past each anchor guarantee truncated
        # wavefronts; the seam guard must fire and the results must still
        # be bit-identical to the unsegmented run.
        pair, config, anchors, reference = setup
        ref = reference_records(reference, config.scheme)
        for idx in range(min(4, len(anchors))):
            t = int(anchors.target_pos[idx])
            q = int(anchors.query_pos[idx])
            one = anchors.take(np.array([idx]))
            chunk = run_fastz_chunk(
                pair.target,
                pair.query,
                config,
                anchors=one,
                t_window=(max(0, t - 8), min(len(pair.target), t + 8)),
                q_window=(max(0, q - 8), min(len(pair.query), q + 8)),
            )
            assert chunk.window_fallbacks > 0
            for at, aq, a in chunk.records:
                assert ref[(at, aq)] == (
                    a.target_start, a.target_end, a.query_start, a.query_end,
                    a.score, a.ops,
                )

    def test_batched_engine_matches_scalar(self, setup):
        pair, config, anchors, _ = setup
        scalar = run_fastz_chunk(pair.target, pair.query, config, anchors=anchors)
        batched = run_fastz_chunk(
            pair.target,
            pair.query,
            config,
            FastzOptions(engine="batched", batch_size=64),
            anchors=anchors,
        )
        assert [(t, q, a) for t, q, a in scalar.records] == [
            (t, q, a) for t, q, a in batched.records
        ]


class TestChunkValidation:
    def test_window_out_of_range(self, setup):
        pair, config, anchors, _ = setup
        with pytest.raises(ValueError, match="window"):
            run_fastz_chunk(
                pair.target, pair.query, config,
                anchors=anchors, t_window=(0, len(pair.target) + 1),
            )

    def test_anchor_outside_window(self, setup):
        pair, config, anchors, _ = setup
        with pytest.raises(ValueError, match="outside"):
            run_fastz_chunk(
                pair.target, pair.query, config,
                anchors=anchors, t_window=(0, 10), q_window=(0, 10),
            )
