"""Unit tests for the divergence model and homology planting."""

import numpy as np
import pytest

from repro.genome import GenomePair, PlantedSegment, SegmentClass, build_pair, mutate
from repro.genome.generator import random_codes


class TestMutate:
    def test_zero_rates_identity(self, rng):
        base = random_codes(rng, 500)
        out = mutate(base, rng, divergence=0.0, indel_rate=0.0)
        assert np.array_equal(out, base)
        assert out is not base  # copy, not alias

    def test_divergence_rate(self, rng):
        base = random_codes(rng, 50_000)
        out = mutate(base, rng, divergence=0.1)
        frac = np.mean(out != base)
        assert 0.08 < frac < 0.12

    def test_substitutions_change_base(self, rng):
        base = random_codes(rng, 10_000)
        out = mutate(base, rng, divergence=1.0 - 1e-12)
        # A substitution never silently keeps the same base.
        assert not np.any(out == base)

    def test_indels_change_length(self, rng):
        base = random_codes(rng, 5000)
        lengths = {
            mutate(base, rng, divergence=0.0, indel_rate=0.02).shape[0]
            for _ in range(5)
        }
        assert lengths != {5000}

    def test_empty_input(self, rng):
        assert mutate(np.zeros(0, dtype=np.uint8), rng).shape == (0,)

    def test_output_dtype(self, rng):
        base = random_codes(rng, 100)
        assert mutate(base, rng, divergence=0.5, indel_rate=0.05).dtype == np.uint8

    def test_mean_indel_length(self, rng):
        base = random_codes(rng, 200_000)
        out = mutate(base, rng, divergence=0.0, indel_rate=0.01, mean_indel_len=5.0)
        # insertions and deletions roughly cancel in expectation, but the
        # total length change should be modest relative to indel volume.
        assert abs(out.shape[0] - base.shape[0]) < 200_000 * 0.01 * 5.0


class TestSegmentClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            SegmentClass("x", -1, 10, 20)
        with pytest.raises(ValueError):
            SegmentClass("x", 1, 20, 10)
        with pytest.raises(ValueError):
            SegmentClass("x", 1, 10, 20, divergence=1.0)
        with pytest.raises(ValueError):
            SegmentClass("x", 1, 10, 20, indel_rate=0.7)
        with pytest.raises(ValueError):
            SegmentClass("x", 1, 10, 20, mean_indel_len=0.5)


class TestBuildPair:
    @pytest.fixture()
    def pair(self) -> GenomePair:
        return build_pair(
            "p",
            target_length=20_000,
            query_length=20_000,
            classes=[
                SegmentClass("short", 20, 19, 21, divergence=0.01),
                SegmentClass("long", 3, 200, 400, divergence=0.05),
            ],
            rng=11,
        )

    def test_lengths(self, pair):
        assert len(pair.target) == 20_000
        # Query assembled from gaps + segments; close to requested length.
        assert abs(len(pair.query) - 20_000) < 2_000

    def test_segment_counts(self, pair):
        assert len(pair.segments_of("short")) == 20
        assert len(pair.segments_of("long")) == 3

    def test_segments_nonoverlapping_in_query(self, pair):
        segs = sorted(pair.segments, key=lambda s: s.query_start)
        for a, b in zip(segs, segs[1:]):
            assert a.query_end < b.query_start

    def test_planted_coordinates_are_homologous(self, pair):
        # The query interval must be a near-copy of the target interval.
        for seg in pair.segments_of("short"):
            t = pair.target.codes[seg.target_start : seg.target_end]
            q = pair.query.codes[seg.query_start : seg.query_end]
            assert t.shape == q.shape  # no indels in this class
            identity = np.mean(t == q)
            assert identity > 0.9

    def test_segment_properties(self):
        seg = PlantedSegment("c", 10, 30, 100, 125)
        assert seg.target_length == 20
        assert seg.query_length == 25

    def test_query_too_small(self):
        with pytest.raises(ValueError):
            build_pair(
                "p",
                target_length=1000,
                query_length=50,
                classes=[SegmentClass("big", 5, 100, 100)],
                rng=0,
            )

    def test_segment_longer_than_target(self):
        with pytest.raises(ValueError):
            build_pair(
                "p",
                target_length=50,
                query_length=10_000,
                classes=[SegmentClass("big", 1, 100, 100)],
                rng=0,
            )

    def test_deterministic(self):
        kwargs = dict(
            target_length=5_000,
            query_length=5_000,
            classes=[SegmentClass("s", 5, 19, 21)],
        )
        a = build_pair("p", rng=3, **kwargs)
        b = build_pair("p", rng=3, **kwargs)
        assert a.target == b.target
        assert a.query == b.query
        assert a.segments == b.segments

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            build_pair("p", target_length=0, query_length=10, classes=[], rng=0)
