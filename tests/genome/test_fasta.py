"""Unit tests for FASTA I/O."""

import io

import pytest

from repro.genome import Sequence, read_fasta, write_fasta
from repro.genome.fasta import parse_fasta


@pytest.fixture()
def records():
    return [
        Sequence.from_text("chr1", "ACGT" * 30),
        Sequence.from_text("chr2", "GGCC"),
        Sequence.from_text("chr3", ""),
    ]


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path, records):
        path = tmp_path / "g.fa"
        write_fasta(path, records)
        back = read_fasta(path)
        assert back == records

    def test_narrow_wrap(self, tmp_path, records):
        path = tmp_path / "g.fa"
        write_fasta(path, records, width=7)
        assert read_fasta(path) == records
        lines = path.read_text().splitlines()
        assert all(len(l) <= 7 for l in lines if not l.startswith(">"))

    def test_stream_write(self, records):
        buf = io.StringIO()
        write_fasta(buf, records)
        back = list(parse_fasta(io.StringIO(buf.getvalue())))
        assert back == records


class TestParse:
    def test_basic(self):
        text = ">a\nACGT\nACGT\n>b desc ignored\nTTTT\n"
        recs = list(parse_fasta(io.StringIO(text)))
        assert [r.name for r in recs] == ["a", "b"]
        assert recs[0].text() == "ACGTACGT"
        assert recs[1].text() == "TTTT"

    def test_blank_lines_ignored(self):
        recs = list(parse_fasta(io.StringIO(">a\n\nAC\n\nGT\n")))
        assert recs[0].text() == "ACGT"

    def test_data_before_header(self):
        with pytest.raises(ValueError):
            list(parse_fasta(io.StringIO("ACGT\n>a\n")))

    def test_empty_header(self):
        with pytest.raises(ValueError):
            list(parse_fasta(io.StringIO(">\nACGT\n")))

    def test_empty_stream(self):
        assert list(parse_fasta(io.StringIO(""))) == []

    def test_lowercase_normalised(self):
        recs = list(parse_fasta(io.StringIO(">a\nacgt\n")))
        assert recs[0].text() == "ACGT"


class TestWriteValidation:
    def test_bad_width(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(tmp_path / "x.fa", [], width=0)


class TestStreaming:
    def test_iter_fasta_matches_read(self, tmp_path, records):
        path = tmp_path / "g.fa"
        write_fasta(path, records)
        from repro.genome import iter_fasta

        assert list(iter_fasta(path)) == read_fasta(path)

    def test_iter_records_preserves_case(self, tmp_path):
        path = tmp_path / "g.fa"
        path.write_text(">chr1\nacGT\nttAA\n")
        from repro.genome import iter_fasta_records

        assert list(iter_fasta_records(path)) == [("chr1", "acGTttAA")]

    def test_gzip_roundtrip(self, tmp_path, records):
        import gzip

        from repro.genome import iter_fasta

        plain = tmp_path / "g.fa"
        write_fasta(plain, records)
        gz = tmp_path / "g.fa.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        assert list(iter_fasta(gz)) == records
        assert read_fasta(gz) == records

    def test_streaming_is_lazy(self, tmp_path, records):
        # Consuming only the first record must not require parsing the rest.
        path = tmp_path / "g.fa"
        write_fasta(path, records)
        from repro.genome import iter_fasta

        first = next(iter(iter_fasta(path)))
        assert first == records[0]
