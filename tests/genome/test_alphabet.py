"""Unit tests for the DNA alphabet and 2-bit encoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.genome import (
    BASES,
    N_CODE,
    complement_codes,
    decode,
    encode,
    reverse_complement,
)
from repro.genome.alphabet import is_valid_codes


class TestEncode:
    def test_canonical_bases(self):
        assert encode("ACGT").tolist() == [0, 1, 2, 3]

    def test_lowercase(self):
        assert encode("acgt").tolist() == [0, 1, 2, 3]

    def test_n_maps_to_sentinel(self):
        assert encode("N").tolist() == [int(N_CODE)]
        assert encode("n").tolist() == [int(N_CODE)]

    def test_unknown_characters_map_to_n(self):
        assert encode("X-?.").tolist() == [int(N_CODE)] * 4

    def test_empty(self):
        assert encode("").shape == (0,)

    def test_bytes_input(self):
        assert encode(b"ACGT").tolist() == [0, 1, 2, 3]

    def test_dtype(self):
        assert encode("ACGT").dtype == np.uint8


class TestStrictEncode:
    def test_accepts_full_alphabet(self):
        assert encode("ACGTNacgtn", strict=True).tolist() == [
            0, 1, 2, 3, 4, 0, 1, 2, 3, 4,
        ]

    def test_rejects_junk_with_position(self):
        with pytest.raises(ValueError, match="position 4"):
            encode("ACGT1", strict=True)

    def test_rejects_iupac_ambiguity_codes(self):
        # Lenient mode maps these to N; strict mode must not guess.
        with pytest.raises(ValueError):
            encode("ACGTR", strict=True)

    def test_rejects_non_ascii(self):
        with pytest.raises(ValueError, match="non-ASCII"):
            encode("ACGTé", strict=True)

    def test_rejects_bad_bytes(self):
        with pytest.raises(ValueError):
            encode(b"AC-GT", strict=True)

    def test_empty_ok(self):
        assert encode("", strict=True).shape == (0,)


class TestDecode:
    def test_roundtrip_simple(self):
        assert decode(encode("ACGTN")) == "ACGTN"

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode(np.array([5], dtype=np.uint8))

    def test_empty(self):
        assert decode(np.zeros(0, dtype=np.uint8)) == ""


class TestComplement:
    def test_pairs(self):
        assert decode(complement_codes(encode("ACGTN"))) == "TGCAN"

    def test_reverse_complement(self):
        assert decode(reverse_complement(encode("AACG"))) == "CGTT"

    def test_reverse_complement_returns_copy(self):
        codes = encode("ACGT")
        rc = reverse_complement(codes)
        assert rc.flags.owndata or rc.base is not codes


class TestValidation:
    def test_valid(self):
        assert is_valid_codes(encode("ACGTN"))

    def test_invalid_value(self):
        assert not is_valid_codes(np.array([9], dtype=np.uint8))

    def test_wrong_dtype(self):
        assert not is_valid_codes(np.array([0, 1], dtype=np.int32))

    def test_empty_is_valid(self):
        assert is_valid_codes(np.zeros(0, dtype=np.uint8))


@given(st.text(alphabet="ACGTN", max_size=200))
def test_encode_decode_roundtrip(text):
    assert decode(encode(text)) == text


@given(st.text(alphabet="ACGT", max_size=200))
def test_reverse_complement_involution(text):
    codes = encode(text)
    assert np.array_equal(reverse_complement(reverse_complement(codes)), codes)


@given(st.text(alphabet="ACGT", max_size=200))
def test_complement_changes_every_base(text):
    codes = encode(text)
    comp = complement_codes(codes)
    assert not np.any(codes == comp)
