"""Unit tests for the Sequence container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.genome import Sequence, encode


@pytest.fixture()
def seq():
    return Sequence.from_text("s", "ACGTACGTNN")


class TestConstruction:
    def test_from_text(self, seq):
        assert seq.text() == "ACGTACGTNN"
        assert len(seq) == 10

    def test_codes_are_read_only(self, seq):
        with pytest.raises(ValueError):
            seq.codes[0] = 3

    def test_invalid_codes_rejected(self):
        with pytest.raises(ValueError):
            Sequence("bad", np.array([7], dtype=np.uint8))

    def test_empty_sequence(self):
        s = Sequence.from_text("e", "")
        assert len(s) == 0
        assert s.text() == ""


class TestProtocol:
    def test_getitem_slice(self, seq):
        assert seq[0:4].tolist() == [0, 1, 2, 3]

    def test_equality(self):
        a = Sequence.from_text("x", "ACGT")
        b = Sequence.from_text("x", "ACGT")
        c = Sequence.from_text("y", "ACGT")
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_equality_other_type(self, seq):
        assert seq != "ACGT"


class TestSubsequence:
    def test_basic(self, seq):
        sub = seq.subsequence(2, 6)
        assert sub.text() == "GTAC"
        assert sub.name == "s[2:6]"

    def test_custom_name(self, seq):
        assert seq.subsequence(0, 2, name="z").name == "z"

    def test_out_of_range(self, seq):
        with pytest.raises(IndexError):
            seq.subsequence(5, 100)
        with pytest.raises(IndexError):
            seq.subsequence(-1, 3)
        with pytest.raises(IndexError):
            seq.subsequence(6, 4)


class TestReverseComplement:
    def test_basic(self):
        s = Sequence.from_text("s", "AACG")
        assert s.reverse_complement().text() == "CGTT"

    def test_name(self):
        s = Sequence.from_text("s", "A")
        assert s.reverse_complement().name == "s(-)"


class TestStats:
    def test_gc_fraction(self):
        assert Sequence.from_text("s", "GGCC").gc_fraction() == 1.0
        assert Sequence.from_text("s", "AATT").gc_fraction() == 0.0
        assert Sequence.from_text("s", "ACGT").gc_fraction() == 0.5

    def test_gc_ignores_n(self):
        assert Sequence.from_text("s", "GCNN").gc_fraction() == 1.0

    def test_gc_empty(self):
        assert Sequence.from_text("s", "").gc_fraction() == 0.0
        assert Sequence.from_text("s", "NN").gc_fraction() == 0.0

    def test_n_fraction(self):
        assert Sequence.from_text("s", "ANNN").n_fraction() == 0.75
        assert Sequence.from_text("s", "").n_fraction() == 0.0


@given(st.text(alphabet="ACGT", min_size=1, max_size=100))
def test_revcomp_involution_on_sequence(text):
    s = Sequence.from_text("t", text)
    assert s.reverse_complement().reverse_complement().text() == text


@given(st.text(alphabet="ACGTN", max_size=100), st.integers(0, 100), st.integers(0, 100))
def test_subsequence_matches_python_slice(text, a, b):
    s = Sequence.from_text("t", text)
    lo, hi = sorted((min(a, len(text)), min(b, len(text))))
    assert s.subsequence(lo, hi).text() == text[lo:hi]
