"""Unit tests for random genome generation."""

import numpy as np
import pytest

from repro.genome import random_codes, random_sequence, tandem_repeat


class TestRandomCodes:
    def test_length(self, rng):
        assert random_codes(rng, 1000).shape == (1000,)

    def test_empty(self, rng):
        assert random_codes(rng, 0).shape == (0,)

    def test_negative(self, rng):
        with pytest.raises(ValueError):
            random_codes(rng, -1)

    def test_values_in_range(self, rng):
        codes = random_codes(rng, 5000)
        assert codes.min() >= 0 and codes.max() <= 3

    def test_gc_bias(self, rng):
        codes = random_codes(rng, 50_000, gc=0.8)
        gc = np.mean((codes == 1) | (codes == 2))
        assert 0.77 < gc < 0.83

    def test_gc_zero(self, rng):
        codes = random_codes(rng, 1000, gc=0.0)
        assert not np.any((codes == 1) | (codes == 2))

    def test_gc_validation(self, rng):
        with pytest.raises(ValueError):
            random_codes(rng, 10, gc=1.5)

    def test_deterministic(self):
        a = random_codes(np.random.default_rng(5), 100)
        b = random_codes(np.random.default_rng(5), 100)
        assert np.array_equal(a, b)


class TestRandomSequence:
    def test_name_and_length(self, rng):
        s = random_sequence(rng, "chrX", 500)
        assert s.name == "chrX"
        assert len(s) == 500


class TestTandemRepeat:
    def test_structure(self, rng):
        rep = tandem_repeat(rng, 10, 5)
        assert rep.shape == (50,)
        for k in range(5):
            assert np.array_equal(rep[k * 10 : (k + 1) * 10], rep[:10])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            tandem_repeat(rng, 0, 5)
        with pytest.raises(ValueError):
            tandem_repeat(rng, 5, 0)
