"""Integration: the pipelines under LASTZ's *unscaled* default parameters.

Most of the suite runs the scaled scheme (y-drop 2400, extend 60) for
speed.  This module runs a small workload under the true LASTZ defaults
(HOXD70, gap 400+30, y-drop 9400) to guard the default code path users
get out of the box.
"""

import pytest

from repro.core import run_fastz
from repro.genome import SegmentClass, build_pair
from repro.lastz import LastzConfig, run_gapped_lastz
from repro.scoring import default_scheme


@pytest.fixture(scope="module")
def runs():
    pair = build_pair(
        "defaults",
        target_length=15_000,
        query_length=15_000,
        classes=[
            SegmentClass("short", 6, 19, 21, divergence=0.01),
            SegmentClass("mid", 3, 80, 200, divergence=0.06, indel_rate=0.004),
        ],
        rng=55,
    )
    config = LastzConfig(scheme=default_scheme(), diag_band=150)
    lastz = run_gapped_lastz(pair.target, pair.query, config)
    fastz = run_fastz(pair.target, pair.query, config, anchors=lastz.anchors)
    return pair, config, lastz, fastz


class TestDefaultScheme:
    def test_defaults_are_lastz(self):
        scheme = default_scheme()
        assert (scheme.gap_open, scheme.gap_extend, scheme.ydrop) == (400, 30, 9400)

    def test_pipelines_agree(self, runs):
        _, _, lastz, fastz = runs
        skipped = {(t.anchor_t, t.anchor_q) for t in lastz.tasks if t.skipped}
        by_anchor = {(t.anchor_t, t.anchor_q): t for t in fastz.tasks}
        for ref in lastz.tasks:
            if (ref.anchor_t, ref.anchor_q) in skipped:
                continue
            assert by_anchor[(ref.anchor_t, ref.anchor_q)].score >= ref.score

    def test_alignments_found_and_rescore(self, runs):
        pair, config, lastz, fastz = runs
        assert len(lastz.alignments) >= 3
        for a in fastz.alignments:
            assert a.rescore(pair.target.codes, pair.query.codes, config.scheme) == a.score

    def test_deep_search_space(self, runs):
        """Under the real y-drop the search dwarfs even mid alignments."""
        _, _, _, fastz = runs
        arr = fastz.arrays
        assert arr.insp_cells.sum() > 10 * arr.exec_cells.sum()
