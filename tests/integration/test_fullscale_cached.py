"""Reproduction regression tests over the full-scale cached profiles.

These assert the paper's cross-benchmark *shapes* (the things Figures 7/8
and Table 2 argue) using the scale-1.0 profiles the benchmark harness
builds.  Building those profiles takes minutes, so the tests run only when
the benchmark cache is already populated (``pytest benchmarks/`` first);
otherwise they skip.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.core import time_fastz
from repro.gpusim import RTX_3080_AMPERE
from repro.lastz import sequential_seconds
from repro.workloads import SAME_GENUS_BENCHMARKS
from repro.workloads.profiles import (
    BENCH_OPTIONS,
    _cache_dir,
    _cache_key,
    bench_calibration,
    build_profile,
)


def _cached_profiles():
    directory = _cache_dir()
    if directory is None or not directory.exists():
        return None
    profiles = []
    for spec in SAME_GENUS_BENCHMARKS:
        key = _cache_key(spec, 1.0)
        path = directory / f"profile-{spec.name.replace('/', '_')}-{key}.pkl"
        if not path.exists():
            return None
        profiles.append(build_profile(spec, scale=1.0))
    return profiles


@pytest.fixture(scope="module")
def profiles():
    loaded = _cached_profiles()
    if loaded is None:
        pytest.skip("full-scale profile cache not built (run pytest benchmarks/)")
    return loaded


class TestCrossBenchmarkShapes:
    def test_eager_fractions_in_paper_band(self, profiles):
        for p in profiles:
            assert 0.70 < p.fastz.eager_fraction < 0.82, p.name

    def test_bin4_ordering_matches_table2(self, profiles):
        counts = {p.name: int(p.fastz.bin_counts()[-1]) for p in profiles}
        assert counts["C1_5,5"] == max(counts.values())
        assert counts["D1_2R,2"] == 0

    def test_speedup_anticorrelates_with_bin4(self, profiles):
        """Figure 7's trend: more long alignments, lower speedup."""
        calib = bench_calibration()
        bin4 = []
        speedups = []
        for p in profiles:
            cpu = sequential_seconds(p.cpu_cells)
            t = time_fastz(
                p.arrays,
                RTX_3080_AMPERE,
                BENCH_OPTIONS,
                calib,
                transfer_bytes=p.transfer_bytes,
            )
            bin4.append(int(p.fastz.bin_counts()[-1]))
            speedups.append(cpu / t.total_seconds)
        bin4 = np.array(bin4, dtype=float)
        speedups = np.array(speedups)
        # The no-tail benchmark must beat the heaviest-tail benchmark.
        assert speedups[bin4.argmin()] > speedups[bin4.argmax()]
        corr = np.corrcoef(bin4, speedups)[0, 1]
        assert corr < 0.0

    def test_ampere_mean_in_paper_band(self, profiles):
        calib = bench_calibration()
        speedups = []
        for p in profiles:
            cpu = sequential_seconds(p.cpu_cells)
            t = time_fastz(
                p.arrays,
                RTX_3080_AMPERE,
                BENCH_OPTIONS,
                calib,
                transfer_bytes=p.transfer_bytes,
            )
            speedups.append(cpu / t.total_seconds)
        mean = float(np.mean(speedups))
        assert 70.0 < mean < 160.0  # paper: 111x

    def test_no_fallbacks_anywhere(self, profiles):
        assert all(p.fastz.executor_fallbacks == 0 for p in profiles)
