"""Integration tests: the whole stack on one small benchmark.

These exercise seed discovery -> anchors -> reference LASTZ -> FastZ ->
performance models -> experiment assembly, end to end, at a reduced scale.
"""

import numpy as np
import pytest

from repro.analysis import distribution_row
from repro.core import time_fastz, time_feng_baseline, ablation_times
from repro.gpusim import ALL_DEVICES, RTX_3080_AMPERE
from repro.lastz import multicore_seconds, sequential_seconds
from repro.workloads import build_profile, get_benchmark
from repro.workloads.profiles import BENCH_OPTIONS, bench_calibration


@pytest.fixture(autouse=True)
def isolated_cache(monkeypatch, session_cache_dir):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(session_cache_dir))


@pytest.fixture(scope="module")
def profile(session_cache_dir):
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(session_cache_dir))
    try:
        yield build_profile(get_benchmark("C1_4,4"), scale=0.15)
    finally:
        mp.undo()


class TestWorkloadShape:
    def test_eager_majority(self, profile):
        assert profile.fastz.eager_fraction > 0.6

    def test_bin_tail_ordering(self, profile):
        row = distribution_row(profile.name, profile.fastz)
        counts = row.counts
        assert counts[0] > counts[1]  # eager > bin1
        assert counts[1] > counts[3] + counts[4]  # bin1 > deep tail

    def test_search_space_dwarfs_alignments(self, profile):
        arr = profile.arrays
        # The paper's premise: total explored cells >> optimal-region cells.
        assert arr.insp_cells.sum() > 5 * arr.exec_cells.sum()

    def test_fastz_no_fallbacks(self, profile):
        assert profile.fastz.executor_fallbacks == 0


class TestCorrectness:
    def test_fastz_matches_reference_scores(self, profile):
        ref_scores = np.array([t.score for t in profile.lastz.tasks])
        fz_scores = np.array([t.score for t in profile.fastz.tasks])
        skipped = np.array([t.skipped for t in profile.lastz.tasks])
        # Non-skipped anchors must agree (or FastZ be better) task by task.
        assert np.all(fz_scores[~skipped] >= ref_scores[~skipped])
        same = np.mean(fz_scores[~skipped] == ref_scores[~skipped])
        assert same > 0.99


class TestPerformanceShape:
    """The paper's headline comparisons, as shape assertions."""

    def test_gpu_baseline_is_slower_than_lastz(self, profile):
        calib = bench_calibration()
        cpu = sequential_seconds(profile.cpu_cells)
        for dev in ALL_DEVICES:
            feng = time_feng_baseline(profile.arrays, dev, calib)
            assert feng > cpu, f"{dev.name}: Feng baseline should lose to the CPU"

    def test_multicore_speedup_band(self, profile):
        cpu = sequential_seconds(profile.cpu_cells)
        speedup = cpu / multicore_seconds(profile.cpu_cells)
        assert 5.0 < speedup <= 21.0  # paper: ~20x

    def test_fastz_speedup_band(self, profile):
        calib = bench_calibration()
        cpu = sequential_seconds(profile.cpu_cells)
        # Wide sanity bands: at this tiny test scale launch overheads and
        # critical paths weigh more than at benchmark scale.
        for dev, band in [
            ("Titan X", (8, 150)),
            ("QV100", (12, 250)),
            ("RTX 3080", (15, 300)),
        ]:
            spec = next(d for d in ALL_DEVICES if d.name == dev)
            t = time_fastz(
                profile.arrays,
                spec,
                BENCH_OPTIONS,
                calib,
                transfer_bytes=profile.transfer_bytes,
            )
            speedup = cpu / t.total_seconds
            assert band[0] < speedup < band[1], (dev, speedup)

    def test_fastz_beats_multicore_everywhere(self, profile):
        calib = bench_calibration()
        cpu = sequential_seconds(profile.cpu_cells)
        mc = cpu / multicore_seconds(profile.cpu_cells)
        for dev in ALL_DEVICES:
            t = time_fastz(profile.arrays, dev, BENCH_OPTIONS, calib)
            assert cpu / t.total_seconds > mc

    def test_ablation_ladder_monotone(self, profile):
        calib = bench_calibration()
        table = ablation_times(
            profile.arrays,
            RTX_3080_AMPERE,
            calib,
            bin_edges=BENCH_OPTIONS.bin_edges,
            transfer_bytes=profile.transfer_bytes,
        )
        totals = [t.total_seconds for t in table.values()]
        assert totals[0] > totals[1] > totals[2] > totals[3]
        assert totals[4] > totals[3]  # single stream hurts

    def test_breakdown_inspector_heavy(self, profile):
        calib = bench_calibration()
        t = time_fastz(
            profile.arrays,
            RTX_3080_AMPERE,
            BENCH_OPTIONS,
            calib,
            transfer_bytes=profile.transfer_bytes,
        )
        bd = t.breakdown()
        assert bd["inspector"] > bd["executor"]
        assert bd["inspector"] > 0.3
