"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.genome import SegmentClass, build_pair, write_fasta


@pytest.fixture(scope="module")
def fasta_pair(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("cli")
    pair = build_pair(
        "cli",
        target_length=30_000,
        query_length=30_000,
        classes=[SegmentClass("seg", 25, 80, 300, divergence=0.05)],
        rng=9,
    )
    t_path = tmp / "t.fa"
    q_path = tmp / "q.fa"
    write_fasta(t_path, [pair.target])
    write_fasta(q_path, [pair.query])
    return str(t_path), str(q_path)


_FAST = ["--gap-extend", "60", "--ydrop", "2400"]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_defaults(self):
        args = build_parser().parse_args(["align", "a.fa", "b.fa"])
        assert args.engine == "lastz"
        assert args.gap_open == 400


class TestAlign:
    def test_lastz_engine(self, fasta_pair, capsys):
        t, q = fasta_pair
        assert main(["align", t, q, *_FAST]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if not l.startswith("#")]
        assert len(lines) > 5
        fields = lines[0].split("\t")
        assert len(fields) == 9
        assert int(fields[0]) >= 3000  # score column clears the threshold
        assert fields[8].endswith("M") or "I" in fields[8]  # cigar

    def test_fastz_engine_matches_lastz(self, fasta_pair, capsys):
        t, q = fasta_pair
        main(["align", t, q, *_FAST])
        lastz_out = {
            l.split("\t")[0:7][0]
            for l in capsys.readouterr().out.splitlines()
            if not l.startswith("#")
        }
        main(["align", t, q, "--engine", "fastz", *_FAST])
        fastz_out = {
            l.split("\t")[0:7][0]
            for l in capsys.readouterr().out.splitlines()
            if not l.startswith("#")
        }
        assert lastz_out <= fastz_out

    def test_ungapped_engine(self, fasta_pair, capsys):
        t, q = fasta_pair
        assert main(["align", t, q, "--engine", "ungapped", *_FAST]) == 0
        assert capsys.readouterr().out.startswith("#score")

    def test_no_cigar(self, fasta_pair, capsys):
        t, q = fasta_pair
        main(["align", t, q, "--no-cigar", *_FAST])
        lines = [
            l for l in capsys.readouterr().out.splitlines() if not l.startswith("#")
        ]
        assert all(l.split("\t")[8] == "-" for l in lines)


class TestSynth:
    def test_writes_fasta(self, tmp_path, capsys):
        t_out = tmp_path / "t.fa"
        q_out = tmp_path / "q.fa"
        rc = main(
            [
                "synth",
                "--target-out", str(t_out),
                "--query-out", str(q_out),
                "--length", "5000",
                "--segments", "5",
            ]
        )
        assert rc == 0
        assert t_out.exists() and q_out.exists()
        assert t_out.read_text().startswith(">synth.target")


class TestAlignFormats:
    def test_maf_output(self, fasta_pair, capsys):
        t, q = fasta_pair
        assert main(["align", t, q, "--format", "maf", *_FAST]) == 0
        out = capsys.readouterr().out
        assert out.startswith("##maf version=1")
        assert "a score=" in out

    def test_maf_requires_cigar(self, fasta_pair, capsys):
        t, q = fasta_pair
        assert main(["align", t, q, "--format", "maf", "--no-cigar", *_FAST]) == 2

    def test_output_file(self, fasta_pair, tmp_path, capsys):
        t, q = fasta_pair
        out_path = tmp_path / "out.tsv"
        assert main(["align", t, q, "--output", str(out_path), *_FAST]) == 0
        assert out_path.read_text().startswith("#score")


class TestWga:
    def test_matches_align_fastz_byte_for_byte(self, fasta_pair, tmp_path, capsys):
        t, q = fasta_pair
        wga_out = tmp_path / "wga.maf"
        align_out = tmp_path / "align.maf"
        assert main([
            "wga", t, q,
            "--job-dir", str(tmp_path / "job"),
            "--chunk-size", "10000", "--overlap", "2048",
            "--format", "maf", "--output", str(wga_out),
            "--quiet", *_FAST,
        ]) == 0
        assert main([
            "align", t, q, "--engine", "fastz",
            "--format", "maf", "--output", str(align_out), *_FAST,
        ]) == 0
        capsys.readouterr()
        assert wga_out.read_bytes() == align_out.read_bytes()

    def test_rerun_resumes_and_reproduces(self, fasta_pair, tmp_path, capsys):
        t, q = fasta_pair
        args = [
            "wga", t, q,
            "--job-dir", str(tmp_path / "job"),
            "--chunk-size", "10000", "--overlap", "2048",
            "--quiet", *_FAST,
        ]
        first = tmp_path / "first.tsv"
        second = tmp_path / "second.tsv"
        assert main([*args, "--output", str(first)]) == 0
        assert main([*args, "--output", str(second)]) == 0
        err = capsys.readouterr().err
        assert "(resumed)" in err
        assert first.read_bytes() == second.read_bytes()

    def test_wga_defaults(self):
        args = build_parser().parse_args(
            ["wga", "a.fa", "b.fa", "--job-dir", "jd"]
        )
        assert args.chunk_size == 32_768
        assert args.overlap == 4_096
        assert args.workers == 0
        assert args.max_attempts == 3
        assert not args.fresh
        assert not args.strict

    def test_strict_exit_code_on_quarantine(
        self, fasta_pair, tmp_path, monkeypatch, capsys
    ):
        import repro.jobs as jobs_mod
        from repro.jobs.runner import QuarantinedTask, WgaReport

        t, q = fasta_pair

        def fake_run_wga(*args, **kwargs):
            return WgaReport(
                alignments=[],
                job_dir=tmp_path / "job",
                digest="x",
                resumed=False,
                n_anchors=0,
                n_seed_tasks=1,
                n_extend_tasks=0,
                seed_skipped=0,
                extend_skipped=0,
                retries=2,
                worker_deaths=0,
                window_fallbacks=0,
                quarantined=[QuarantinedTask("seed", "c0x0", 3, "boom")],
            )

        monkeypatch.setattr(jobs_mod, "run_wga", fake_run_wga)
        base = ["wga", t, q, "--job-dir", str(tmp_path / "job"), "--quiet", *_FAST]
        # Default keeps the exit-0 "completes with a reported gap" contract.
        assert main(base) == 0
        # --strict makes the gap visible to scripted callers via the status.
        assert main([*base, "--strict"]) == 3
        err = capsys.readouterr().err
        assert "quarantined" in err and "c0x0" in err


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestTrace:
    def test_span_tree_matches_direct_run(self, fasta_pair, capsys):
        """The printed trace agrees with a direct ``run_fastz`` result."""
        from repro import run_fastz
        from repro.core import FastzOptions
        from repro.genome import read_fasta
        from repro.lastz import LastzConfig
        from repro.scoring import default_scheme

        t, q = fasta_pair
        assert main(["trace", t, q, *_FAST]) == 0
        out = capsys.readouterr().out

        config = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))
        direct = run_fastz(
            read_fasta(t)[0],
            read_fasta(q)[0],
            config,
            FastzOptions(engine="batched"),
        )

        assert out.startswith("fastz.run")
        for name in ("fastz.prepare", "fastz.seeding", "fastz.extend",
                     "fastz.inspector", "fastz.finish"):
            assert name in out
        assert (
            f"eager fraction:     {direct.eager_fraction:.4f} "
            f"({direct.eager_count}/{len(direct.tasks)} anchor tasks)" in out
        )
        assert f"bins [eager,1-4]:   {direct.bin_counts().tolist()}" in out
        # Per-bin executor spans account for every non-eager task.
        import re

        executor_tasks = sum(
            int(m) for m in re.findall(r"fastz\.executor.*?tasks=(\d+)", out)
        )
        assert executor_tasks == 2 * (len(direct.tasks) - direct.eager_count)

    def test_trace_leaves_obs_disabled(self, fasta_pair, capsys):
        from repro import obs

        t, q = fasta_pair
        assert main(["trace", t, q, *_FAST]) == 0
        capsys.readouterr()
        assert not obs.enabled()

    def test_trace_metrics_flag(self, fasta_pair, capsys):
        t, q = fasta_pair
        assert main(["trace", t, q, "--metrics", *_FAST]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_pipeline_anchors_total counter" in out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8642
        assert args.max_batch == 32
        assert args.max_queue == 256
        assert args.cache_entries == 128

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--port", "9000", "--max-batch", "1", "--max-wait-ms", "0"]
        )
        assert args.port == 9000
        assert args.max_batch == 1
        assert args.max_wait_ms == 0.0


class TestRefs:
    def test_add_ls_rm(self, fasta_pair, tmp_path, capsys):
        t, _q = fasta_pair
        store = str(tmp_path / "store")
        assert main(["refs", "add", t, "--store", store]) == 0
        digest = capsys.readouterr().out.split()[0]
        assert len(digest) == 64

        assert main(["refs", "ls", "--store", store]) == 0
        assert digest in capsys.readouterr().out

        assert main(["refs", "rm", digest[:10], "--store", store]) == 0
        capsys.readouterr()
        assert main(["refs", "ls", "--store", store]) == 0
        assert digest not in capsys.readouterr().out

    def test_add_is_idempotent(self, fasta_pair, tmp_path, capsys):
        t, _q = fasta_pair
        store = str(tmp_path / "store")
        main(["refs", "add", t, "--store", store])
        first = capsys.readouterr().out
        main(["refs", "add", t, "--store", store])
        assert capsys.readouterr().out == first

    def test_rm_unknown_exits_2(self, tmp_path, capsys):
        assert main(
            ["refs", "rm", "feed", "--store", str(tmp_path / "store")]
        ) == 2

    def test_store_dir_from_env(self, fasta_pair, tmp_path, capsys, monkeypatch):
        t, _q = fasta_pair
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "envstore"))
        assert main(["refs", "add", t]) == 0
        digest = capsys.readouterr().out.split()[0]
        assert main(["refs", "ls"]) == 0
        assert digest in capsys.readouterr().out

    def test_precompute_seeds(self, fasta_pair, tmp_path, capsys):
        t, _q = fasta_pair
        store = tmp_path / "store"
        main(["refs", "add", t, "--store", str(store), "--precompute-seeds"])
        digest = capsys.readouterr().out.split()[0]
        assert (store / digest[:2] / f"{digest}.seeds-v1-k19.npz").exists()


class TestAlignByRef:
    def test_ref_spec_matches_fasta(self, fasta_pair, tmp_path, capsys):
        t, q = fasta_pair
        store = str(tmp_path / "store")
        main(["refs", "add", t, "--store", store])
        digest = capsys.readouterr().out.split()[0]

        main(["align", t, q, "--engine", "fastz", *_FAST])
        by_bytes = capsys.readouterr().out
        main(
            ["align", f"ref:{digest[:12]}", q, "--store", store,
             "--engine", "fastz", *_FAST]
        )
        by_ref = capsys.readouterr().out
        assert by_ref == by_bytes

    def test_trace_cold_then_warm_seed_span(self, fasta_pair, tmp_path, capsys):
        t, q = fasta_pair
        store = str(tmp_path / "store")
        main(["refs", "add", t, "--store", store])
        digest = capsys.readouterr().out.split()[0]

        assert main(["trace", f"ref:{digest}", q, "--store", store, *_FAST]) == 0
        cold = capsys.readouterr().out
        assert "fastz.seed_table" in cold

        assert main(["trace", f"ref:{digest}", q, "--store", store, *_FAST]) == 0
        warm = capsys.readouterr().out
        assert "fastz.seed_table" not in warm
