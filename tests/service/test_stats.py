"""Unit tests for the stats layer: percentile pins, recorder, registry.

The percentile pins are regression tests for the banker's-rounding bug:
``round(q * (n - 1))`` drifted p50 of an even-length sample up a rank
(p50 of [1, 2, 3, 4] came out 3, not 2).  The recorder tests pin the
counter/registry agreement that ``/stats`` vs ``/metrics`` relies on.
"""

from repro.service.cache import CacheStats
from repro.service.stats import StatsRecorder, _percentile

_CACHE = CacheStats(hits=0, misses=0, evictions=0, size=0, capacity=0)


class TestPercentile:
    def test_empty_sample_is_zero(self):
        assert _percentile([], 0.50) == 0.0
        assert _percentile([], 0.95) == 0.0

    def test_single_sample(self):
        assert _percentile([7.5], 0.50) == 7.5
        assert _percentile([7.5], 0.95) == 7.5

    def test_even_length_pins(self):
        # Nearest-rank: p50 of 4 samples is the 2nd order statistic.  The
        # old round()-based rank gave 3.0 here (banker's rounding).
        sample = [4.0, 1.0, 3.0, 2.0]
        assert _percentile(sample, 0.50) == 2.0
        assert _percentile(sample, 0.95) == 4.0
        assert _percentile([1.0, 2.0], 0.50) == 1.0
        assert _percentile([1.0, 2.0], 0.95) == 2.0

    def test_odd_length_median(self):
        assert _percentile([3.0, 1.0, 2.0], 0.50) == 2.0

    def test_hundred_sample_pins(self):
        sample = [float(i) for i in range(1, 101)]
        assert _percentile(sample, 0.50) == 50.0
        assert _percentile(sample, 0.95) == 95.0
        assert _percentile(sample, 1.00) == 100.0

    def test_input_not_mutated(self):
        sample = [3.0, 1.0, 2.0]
        _percentile(sample, 0.50)
        assert sample == [3.0, 1.0, 2.0]


class TestStatsRecorder:
    def test_counts_flow_into_snapshot(self):
        rec = StatsRecorder()
        for _ in range(3):
            rec.record_submitted()
        rec.record_completed(0.010)
        rec.record_completed(0.030)
        rec.record_cache_hit()
        rec.record_abandoned()
        rec.record_batch(2)
        stats = rec.snapshot(queue_depth=1, cache=_CACHE)
        assert stats.submitted == 3
        assert stats.completed == 2
        assert stats.cache_hits == 1
        assert stats.abandoned == 1
        assert stats.batch_histogram == {2: 1}
        assert stats.latency_p50_ms == 10.0
        assert stats.latency_p95_ms == 30.0

    def test_cache_hits_do_not_touch_latency_window(self):
        rec = StatsRecorder()
        rec.record_completed(0.100)
        for _ in range(10):
            rec.record_cache_hit()
        stats = rec.snapshot(queue_depth=0, cache=_CACHE)
        # Hot caches must not collapse the percentiles toward zero.
        assert stats.latency_p50_ms == 100.0
        assert stats.cache_hits == 10
        assert stats.completed == 1

    def test_registry_agrees_with_snapshot(self):
        rec = StatsRecorder()
        rec.record_submitted()
        rec.record_completed(0.020)
        rec.record_failed()
        stats = rec.snapshot(queue_depth=0, cache=_CACHE)
        text = rec.registry.render()
        assert 'repro_service_events_total{kind="submitted"} 1' in text
        assert 'repro_service_events_total{kind="completed"} 1' in text
        assert 'repro_service_events_total{kind="failed"} 1' in text
        assert stats.submitted == 1 and stats.completed == 1 and stats.failed == 1

    def test_as_dict_includes_new_fields(self):
        rec = StatsRecorder()
        payload = rec.snapshot(queue_depth=0, cache=_CACHE).as_dict()
        assert payload["abandoned"] == 0
        assert payload["cache_hits"] == 0
