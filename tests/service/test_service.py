"""Service-level tests: equivalence under concurrency, robustness, stats.

The load-bearing property is the first class: whatever micro-batch
composition the dispatcher happens to pick, every caller gets a result
bit-identical to running ``run_fastz`` alone on their request.
"""

import threading
import time
from concurrent.futures import CancelledError

import numpy as np
import pytest

from repro import run_fastz
from repro.core.options import FastzOptions
from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.seeding import Anchors
from repro.service import (
    AlignmentService,
    DeadlineExceeded,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.service import batcher as batcher_module

CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))
OPTIONS = FastzOptions(engine="batched")

#: Target length marking the gate request for dispatcher-blocking tests.
_GATE_LEN = 101


def _pair(i: int, length: int):
    return build_pair(
        f"svc{i}",
        target_length=length,
        query_length=length,
        classes=[SegmentClass("s", 4, 60, 220, divergence=0.05)],
        rng=100 + i,
    )


@pytest.fixture
def gated_dispatcher(monkeypatch):
    """Block the dispatcher inside its first prepare until released.

    Submitting a target of length ``_GATE_LEN`` parks the dispatcher
    thread, letting tests fill the queue deterministically; ``release()``
    lets it continue.
    """
    gate = threading.Event()
    real_prepare = batcher_module.prepare_fastz

    def gated(target, query, *args, **kwargs):
        if len(target) == _GATE_LEN:
            gate.wait(timeout=30)
        return real_prepare(target, query, *args, **kwargs)

    monkeypatch.setattr(batcher_module, "prepare_fastz", gated)
    rng = np.random.default_rng(0)
    marker = rng.integers(0, 4, _GATE_LEN, dtype=np.uint8)
    return gate, marker


def _submit_gate(service, marker):
    """Enqueue the gate request and wait until the dispatcher holds it."""
    future = service.submit(marker, marker)
    deadline = time.monotonic() + 10
    while service.stats().queue_depth > 0:
        if time.monotonic() > deadline:  # pragma: no cover
            pytest.fail("dispatcher never picked up the gate request")
        time.sleep(0.005)
    return future


class TestEquivalence:
    def test_concurrent_results_bit_identical(self):
        """>= 8 in-flight requests over mixed lengths == sequential runs."""
        pairs = [_pair(i, 4_000 + 1_700 * i) for i in range(9)]
        with AlignmentService(
            max_batch=16, max_wait_ms=20.0, config=CONFIG, options=OPTIONS
        ) as service:
            futures = [service.submit(p.target, p.query) for p in pairs]
            results = [f.result(timeout=300) for f in futures]
            stats = service.stats()

        # The dispatcher really fused requests (not one-at-a-time).
        assert max(stats.batch_histogram) >= 2
        for pair, served in zip(pairs, results):
            direct = run_fastz(pair.target, pair.query, CONFIG, OPTIONS)
            assert served.alignments == direct.alignments
            assert served.tasks == direct.tasks
            assert served.executor_fallbacks == direct.executor_fallbacks
            assert np.array_equal(
                served.anchors.target_pos, direct.anchors.target_pos
            )

    def test_matches_scalar_engine_too(self):
        pair = _pair(50, 9_000)
        scalar = run_fastz(pair.target, pair.query, CONFIG, FastzOptions())
        with AlignmentService(config=CONFIG, options=OPTIONS) as service:
            served = service.align(pair.target, pair.query, timeout_s=300)
        assert served.alignments == scalar.alignments

    def test_explicit_anchors_respected(self):
        pair = _pair(51, 6_000)
        direct = run_fastz(pair.target, pair.query, CONFIG, OPTIONS)
        with AlignmentService(config=CONFIG, options=OPTIONS) as service:
            served = service.align(
                pair.target, pair.query, anchors=direct.anchors, timeout_s=300
            )
        assert served.alignments == direct.alignments


class TestCachingBehaviour:
    def test_repeat_submission_hits_cache(self):
        pair = _pair(60, 6_000)
        with AlignmentService(config=CONFIG, options=OPTIONS) as service:
            first = service.align(pair.target, pair.query, timeout_s=300)
            again = service.align(pair.target, pair.query, timeout_s=300)
            stats = service.stats()
        assert again is first
        assert stats.cache.hits == 1
        assert stats.cache_hit_rate > 0
        # The hit is its own event: only the dispatched request counts
        # ``completed``, so a hot cache cannot drag p50 toward zero.
        assert stats.cache_hits == 1
        assert stats.completed == 1
        assert stats.latency_p50_ms > 0

    def test_cache_disabled(self):
        pair = _pair(61, 5_000)
        with AlignmentService(
            cache_entries=0, config=CONFIG, options=OPTIONS
        ) as service:
            first = service.align(pair.target, pair.query, timeout_s=300)
            again = service.align(pair.target, pair.query, timeout_s=300)
        assert again is not first
        assert again.alignments == first.alignments


class TestRobustness:
    def test_queue_full_rejection(self, gated_dispatcher):
        gate, marker = gated_dispatcher
        rng = np.random.default_rng(1)
        seqs = [rng.integers(0, 4, 300, dtype=np.uint8) for _ in range(4)]
        service = AlignmentService(
            max_batch=1, max_wait_ms=0.0, max_queue=2, config=CONFIG
        )
        try:
            gate_future = _submit_gate(service, marker)
            service.submit(seqs[0], seqs[1])
            service.submit(seqs[1], seqs[2])
            with pytest.raises(ServiceOverloaded):
                service.submit(seqs[2], seqs[3])
            assert service.stats().rejected == 1
            gate.set()
            assert gate_future.result(timeout=60) is not None
        finally:
            gate.set()
            service.shutdown(timeout=60)

    def test_admission_control_sheds_on_inflight_bytes(self, gated_dispatcher):
        """Beyond the in-flight byte bound, submissions shed with 503
        semantics (ServiceOverloaded + retry_after_s), distinct from
        queue-full rejection."""
        gate, marker = gated_dispatcher
        rng = np.random.default_rng(5)
        big = rng.integers(0, 4, 2_000, dtype=np.uint8)
        service = AlignmentService(
            max_batch=1,
            max_wait_ms=0.0,
            max_inflight_bytes=8_000,
            config=CONFIG,
        )
        try:
            # The gate request (202 bytes) plus one big pair (4000) fit
            # under the bound; a second big pair pushes past it.
            gate_future = _submit_gate(service, marker)
            admitted = service.submit(big, big)
            with pytest.raises(ServiceOverloaded) as excinfo:
                service.submit(big, big)
            assert excinfo.value.retry_after_s > 0
            stats = service.stats()
            assert stats.shed == 1
            assert stats.rejected == 0  # shedding is not queue-full
            gate.set()
            assert admitted.result(timeout=60) is not None
            assert gate_future.result(timeout=60) is not None
            # The completed request released its bytes: admission resumes.
            assert service.align(big, big, timeout_s=60) is not None
        finally:
            gate.set()
            service.shutdown(timeout=60)

    def test_unbounded_inflight_when_disabled(self, gated_dispatcher):
        gate, marker = gated_dispatcher
        rng = np.random.default_rng(6)
        big = rng.integers(0, 4, 50_000, dtype=np.uint8)
        service = AlignmentService(
            max_batch=1, max_wait_ms=0.0, max_inflight_bytes=None, config=CONFIG
        )
        try:
            _submit_gate(service, marker)
            futures = [service.submit(big, big) for _ in range(3)]
            assert service.stats().shed == 0
            gate.set()
            for future in futures:
                assert future.result(timeout=300) is not None
        finally:
            gate.set()
            service.shutdown(timeout=60)

    def test_per_request_timeout(self, gated_dispatcher):
        gate, marker = gated_dispatcher
        rng = np.random.default_rng(2)
        seq = rng.integers(0, 4, 300, dtype=np.uint8)
        service = AlignmentService(max_batch=4, max_wait_ms=0.0, config=CONFIG)
        try:
            _submit_gate(service, marker)
            doomed = service.submit(seq, seq, timeout_s=0.01)
            time.sleep(0.05)
            gate.set()
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=60)
            assert service.stats().timed_out == 1
        finally:
            gate.set()
            service.shutdown(timeout=60)

    def test_align_timeout_is_one_budget(self, gated_dispatcher):
        """``align(timeout_s=T)`` raises within ~T and the work it walked
        away from is recorded ``abandoned``, never ``completed``.

        The gate request itself is aligned, so the dispatcher is already
        executing (not merely queueing) when the caller's wait expires:
        the old code would let the work finish and count it completed.
        """
        gate, marker = gated_dispatcher
        service = AlignmentService(max_batch=4, max_wait_ms=0.0, config=CONFIG)
        try:
            start = time.monotonic()
            with pytest.raises(TimeoutError):
                service.align(marker, marker, timeout_s=0.4)
            elapsed = time.monotonic() - start
            # One budget for queue wait + result wait, not timeout_s twice.
            assert elapsed < 0.4 * 2
            gate.set()
            deadline = time.monotonic() + 30
            while service.stats().abandoned < 1:
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("abandoned work never resolved")
                time.sleep(0.01)
            stats = service.stats()
            assert stats.abandoned == 1
            assert stats.completed == 0
        finally:
            gate.set()
            service.shutdown(timeout=60)

    def test_align_timeout_cancels_queued_work(self, gated_dispatcher):
        """A request still queued when ``align`` gives up never executes."""
        gate, marker = gated_dispatcher
        rng = np.random.default_rng(6)
        seq = rng.integers(0, 4, 300, dtype=np.uint8)
        service = AlignmentService(max_batch=1, max_wait_ms=0.0, config=CONFIG)
        try:
            gate_future = _submit_gate(service, marker)
            with pytest.raises(TimeoutError):
                service.align(seq, seq, timeout_s=0.2)
            gate.set()
            assert gate_future.result(timeout=60) is not None
            deadline = time.monotonic() + 30
            while True:
                stats = service.stats()
                if stats.cancelled + stats.timed_out >= 1:
                    break
                if time.monotonic() > deadline:  # pragma: no cover
                    pytest.fail("queued request neither cancelled nor expired")
                time.sleep(0.01)
            # Only the gate request completed; the walked-away one did not.
            assert stats.completed == 1
        finally:
            gate.set()
            service.shutdown(timeout=60)

    def test_poisoned_request_fails_alone(self, gated_dispatcher):
        """One request with hostile codes must not take down its batch."""
        gate, marker = gated_dispatcher
        pairs = [_pair(70 + i, 4_000) for i in range(3)]
        rng = np.random.default_rng(3)
        poison = rng.integers(0, 4, 2_000, dtype=np.uint8)
        poison[500:600] = 99  # invalid codes: detonates inside extension
        poison_anchors = Anchors(np.array([550]), np.array([550]))

        service = AlignmentService(max_batch=8, max_wait_ms=50.0, config=CONFIG)
        try:
            _submit_gate(service, marker)
            good = [service.submit(p.target, p.query) for p in pairs]
            bad = service.submit(poison, poison, anchors=poison_anchors)
            gate.set()
            with pytest.raises(Exception) as excinfo:
                bad.result(timeout=300)
            assert not isinstance(
                excinfo.value, (ServiceOverloaded, DeadlineExceeded)
            )
            for pair, future in zip(pairs, good):
                served = future.result(timeout=300)
                direct = run_fastz(pair.target, pair.query, CONFIG, OPTIONS)
                assert served.alignments == direct.alignments
            assert service.stats().failed == 1
            # The dispatcher survived: it still serves fresh work.
            after = _pair(99, 4_000)
            assert service.align(after.target, after.query, timeout_s=300)
        finally:
            gate.set()
            service.shutdown(timeout=60)

    def test_shutdown_drains_queued_work(self, gated_dispatcher):
        gate, marker = gated_dispatcher
        pairs = [_pair(80 + i, 4_000) for i in range(3)]
        service = AlignmentService(max_batch=2, max_wait_ms=0.0, config=CONFIG)
        _submit_gate(service, marker)
        futures = [service.submit(p.target, p.query) for p in pairs]

        closer = threading.Thread(target=service.shutdown, kwargs={"drain": True})
        closer.start()
        time.sleep(0.05)
        gate.set()
        closer.join(timeout=300)
        assert not closer.is_alive()
        for pair, future in zip(pairs, futures):
            assert future.result(timeout=1).alignments == run_fastz(
                pair.target, pair.query, CONFIG, OPTIONS
            ).alignments

    def test_shutdown_without_drain_cancels(self, gated_dispatcher):
        gate, marker = gated_dispatcher
        rng = np.random.default_rng(4)
        seq = rng.integers(0, 4, 300, dtype=np.uint8)
        service = AlignmentService(max_batch=1, max_wait_ms=0.0, config=CONFIG)
        _submit_gate(service, marker)
        doomed = service.submit(seq, seq)

        closer = threading.Thread(target=service.shutdown, kwargs={"drain": False})
        closer.start()
        time.sleep(0.05)
        gate.set()
        closer.join(timeout=60)
        assert not closer.is_alive()
        with pytest.raises(CancelledError):
            doomed.result(timeout=1)
        assert service.stats().cancelled >= 1

    def test_submit_after_shutdown_rejected(self):
        service = AlignmentService(config=CONFIG)
        service.shutdown()
        rng = np.random.default_rng(5)
        seq = rng.integers(0, 4, 100, dtype=np.uint8)
        with pytest.raises(ServiceClosed):
            service.submit(seq, seq)
        service.shutdown()  # idempotent


class TestStats:
    def test_snapshot_counters(self):
        pairs = [_pair(90 + i, 4_000) for i in range(3)]
        with AlignmentService(
            max_batch=8, max_wait_ms=10.0, config=CONFIG
        ) as service:
            futures = [service.submit(p.target, p.query) for p in pairs]
            for future in futures:
                future.result(timeout=300)
            stats = service.stats()
        assert stats.submitted == 3
        assert stats.completed == 3
        assert stats.failed == 0
        assert sum(s * c for s, c in stats.batch_histogram.items()) == 3
        assert stats.latency_p95_ms >= stats.latency_p50_ms > 0
        payload = stats.as_dict()
        assert payload["completed"] == 3
        assert "cache" in payload and "batch_histogram" in payload

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AlignmentService(max_batch=0)
        with pytest.raises(ValueError):
            AlignmentService(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            AlignmentService(max_queue=0)
