"""End-to-end tests of the JSON/HTTP endpoint (stdlib client only)."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.service import AlignmentService, make_server

CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))


@pytest.fixture(scope="module")
def endpoint():
    service = AlignmentService(max_wait_ms=1.0, config=CONFIG)
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()
    service.shutdown(timeout=60)


def _post(url, payload, timeout=300):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        f"{url}/align", data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get(url, path, timeout=30):
    with urllib.request.urlopen(f"{url}{path}", timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get_text(url, path, timeout=30):
    with urllib.request.urlopen(f"{url}{path}", timeout=timeout) as response:
        return response.status, response.read().decode()


class TestRoutes:
    def test_healthz(self, endpoint):
        url, _ = endpoint
        status, payload = _get(url, "/healthz")
        assert status == 200 and payload == {"status": "ok"}

    def test_align_roundtrip(self, endpoint):
        url, _ = endpoint
        pair = build_pair(
            "http",
            target_length=12_000,
            query_length=12_000,
            classes=[SegmentClass("s", 6, 80, 250, divergence=0.05)],
            rng=11,
        )
        status, payload = _post(
            url, {"target": pair.target.text(), "query": pair.query.text()}
        )
        assert status == 200
        assert payload["count"] >= 1
        first = payload["alignments"][0]
        assert first["score"] >= CONFIG.scheme.gapped_threshold
        assert first["target_end"] > first["target_start"]
        assert first["cigar"]

    def test_stats_endpoint(self, endpoint):
        url, _ = endpoint
        status, payload = _get(url, "/stats")
        assert status == 200
        assert payload["submitted"] >= 1
        assert "cache" in payload

    def test_metrics_endpoint_agrees_with_stats(self, endpoint):
        url, _ = endpoint
        _, stats = _get(url, "/stats")
        status, text = _get_text(url, "/metrics")
        assert status == 200
        assert "# TYPE repro_service_events_total counter" in text
        # Both endpoints read the same registry, so the counts agree.
        assert (
            f'repro_service_events_total{{kind="submitted"}} {stats["submitted"]}'
            in text
        )
        if stats["completed"]:
            assert (
                f'repro_service_events_total{{kind="completed"}} {stats["completed"]}'
                in text
            )
        assert "repro_service_request_latency_seconds_bucket" in text
        assert "repro_service_queue_depth" in text
        assert 'repro_service_cache{field="hits"}' in text

    def test_unknown_path_404(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url, "/nope")
        assert excinfo.value.code == 404


class TestBadRequests:
    def test_invalid_json_400(self, endpoint):
        url, _ = endpoint
        request = urllib.request.Request(
            f"{url}/align", data=b"not json", headers={"Content-Type": "text/plain"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_missing_fields_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT"})
        assert excinfo.value.code == 400

    def test_bad_timeout_type_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT", "query": "ACGT", "timeout_s": "soon"})
        assert excinfo.value.code == 400

    def test_boolean_timeout_400(self, endpoint):
        # bool passes isinstance(x, int); it must still be rejected rather
        # than silently interpreted as a 1-second (or 0-second) deadline.
        url, _ = endpoint
        for value in (True, False):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(url, {"target": "ACGT", "query": "ACGT", "timeout_s": value})
            assert excinfo.value.code == 400

    def test_non_dna_sequence_400(self, endpoint):
        # The encoding LUT maps junk to N, so without strict validation
        # this body was accepted (aligned as all-N) instead of rejected.
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT123!", "query": "ACGT"})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "target" in body["error"]

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT", "query": "ACGU"})
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "query" in body["error"]

    def test_non_ascii_sequence_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGTé", "query": "ACGT"})
        assert excinfo.value.code == 400

    def test_empty_body_400(self, endpoint):
        url, _ = endpoint
        request = urllib.request.Request(f"{url}/align", data=b"")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
