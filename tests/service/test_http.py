"""End-to-end tests of the versioned JSON/HTTP endpoint (stdlib client)."""

import http.client
import json
import threading
import urllib.error
import urllib.request
import urllib.parse

import pytest

from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.service import AlignmentService, make_server
from repro.service.http import API_PREFIX, LEGACY_PATHS

CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))


@pytest.fixture(scope="module")
def endpoint():
    service = AlignmentService(max_wait_ms=1.0, config=CONFIG)
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()
    service.shutdown(timeout=60)


def _post(url, payload, timeout=300):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        f"{url}/v1/align", data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get(url, path, timeout=30):
    with urllib.request.urlopen(f"{url}{path}", timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get_text(url, path, timeout=30):
    with urllib.request.urlopen(f"{url}{path}", timeout=timeout) as response:
        return response.status, response.read().decode()


def _error_body(excinfo) -> dict:
    """Parse the error envelope from a raised HTTPError."""
    body = json.loads(excinfo.value.read())
    assert set(body) == {"error"}
    assert set(body["error"]) == {"code", "message"}
    return body["error"]


class TestRoutes:
    def test_healthz(self, endpoint):
        url, _ = endpoint
        status, payload = _get(url, "/v1/healthz")
        assert status == 200 and payload == {"status": "ok"}

    def test_align_roundtrip(self, endpoint):
        url, _ = endpoint
        pair = build_pair(
            "http",
            target_length=12_000,
            query_length=12_000,
            classes=[SegmentClass("s", 6, 80, 250, divergence=0.05)],
            rng=11,
        )
        status, payload = _post(
            url, {"target": pair.target.text(), "query": pair.query.text()}
        )
        assert status == 200
        assert payload["count"] >= 1
        first = payload["alignments"][0]
        assert first["score"] >= CONFIG.scheme.gapped_threshold
        assert first["target_end"] > first["target_start"]
        assert first["cigar"]

    def test_align_with_options_body(self, endpoint):
        url, _ = endpoint
        pair = build_pair(
            "http-opts",
            target_length=12_000,
            query_length=12_000,
            classes=[SegmentClass("s", 6, 80, 250, divergence=0.05)],
            rng=12,
        )
        body = {"target": pair.target.text(), "query": pair.query.text()}
        _, default_payload = _post(url, body)
        _, batched_payload = _post(
            url, {**body, "options": {"engine": "batched", "batch_size": 64}}
        )
        # Engines are bit-identical; the option override must not 400.
        assert batched_payload["alignments"] == default_payload["alignments"]

    def test_stats_endpoint(self, endpoint):
        url, _ = endpoint
        status, payload = _get(url, "/v1/stats")
        assert status == 200
        assert payload["submitted"] >= 1
        assert "cache" in payload
        assert "shed" in payload
        # In-process backend: no pool section.
        assert payload["pool"] is None

    def test_metrics_endpoint_agrees_with_stats(self, endpoint):
        url, _ = endpoint
        _, stats = _get(url, "/v1/stats")
        status, text = _get_text(url, "/v1/metrics")
        assert status == 200
        assert "# TYPE repro_service_events_total counter" in text
        # Both endpoints read the same registry, so the counts agree.
        assert (
            f'repro_service_events_total{{kind="submitted"}} {stats["submitted"]}'
            in text
        )
        if stats["completed"]:
            assert (
                f'repro_service_events_total{{kind="completed"}} {stats["completed"]}'
                in text
            )
        assert "repro_service_request_latency_seconds_bucket" in text
        assert "repro_service_queue_depth" in text
        assert 'repro_service_cache{field="hits"}' in text

    def test_unknown_path_404(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url, "/v1/nope")
        assert excinfo.value.code == 404
        assert _error_body(excinfo)["code"] == "not_found"


class TestLegacyRedirects:
    def test_get_paths_redirect_307_with_deprecation(self, endpoint):
        # urllib auto-follows GET redirects, so talk raw HTTP to see them.
        url, _ = endpoint
        parsed = urllib.parse.urlparse(url)
        for path in LEGACY_PATHS:
            conn = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=30)
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                assert response.status == 307, path
                assert response.getheader("Location") == API_PREFIX + path
                assert response.getheader("Deprecation") == "true"
            finally:
                conn.close()

    def test_legacy_get_followed_still_works(self, endpoint):
        # End-to-end: a legacy client that follows redirects keeps working.
        url, _ = endpoint
        status, payload = _get(url, "/healthz")
        assert status == 200 and payload == {"status": "ok"}

    def test_legacy_post_align_redirects_307(self, endpoint):
        # urllib refuses to follow POST 307s, surfacing the redirect —
        # exactly what we assert on (307 preserves method + body).
        url, _ = endpoint
        data = json.dumps({"target": "ACGT", "query": "ACGT"}).encode()
        request = urllib.request.Request(
            f"{url}/align", data=data, headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 307
        assert excinfo.value.headers["Location"] == "/v1/align"
        assert excinfo.value.headers["Deprecation"] == "true"


class TestStreaming:
    def _stream(self, url, payload, query="stream=1", timeout=300):
        data = json.dumps(payload).encode()
        request = urllib.request.Request(
            f"{url}/v1/align?{query}",
            data=data,
            headers={"Content-Type": "application/json"},
        )
        response = urllib.request.urlopen(request, timeout=timeout)
        return response

    def test_ndjson_partials_then_summary_matches_barrier(self, endpoint):
        url, _ = endpoint
        pair = build_pair(
            "http-stream",
            target_length=12_000,
            query_length=12_000,
            classes=[SegmentClass("s", 6, 80, 250, divergence=0.05)],
            rng=13,
        )
        body = {"target": pair.target.text(), "query": pair.query.text()}
        _, barrier = _post(url, body)

        with self._stream(url, body) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/x-ndjson"
            records = [json.loads(line) for line in response if line.strip()]

        assert [r["type"] for r in records[:-1]] == ["partial"] * (
            len(records) - 1
        )
        assert len(records) >= 2  # at least one partial before the summary
        summary = records[-1]
        assert summary["type"] == "summary"
        # The terminal summary is byte-for-byte the barrier endpoint's body.
        assert {k: v for k, v in summary.items() if k != "type"} == barrier
        # Union of partial alignments == the summary's alignment set.
        streamed = [a for r in records[:-1] for a in r["alignments"]]
        assert sorted(map(repr, streamed)) == sorted(
            map(repr, barrier["alignments"])
        )
        for r in records[:-1]:
            assert r["seq"] >= 0
            assert r["done_anchors"] >= r["anchors"] >= 1

    def test_stream_zero_is_the_barrier_endpoint(self, endpoint):
        url, _ = endpoint
        body = {"target": "ACGT" * 600, "query": "ACGT" * 600}
        with self._stream(url, body, query="stream=0") as response:
            payload = json.loads(response.read())
        assert "alignments" in payload and "type" not in payload

    def test_timeout_s_rejected_with_stream(self, endpoint):
        url, _ = endpoint
        body = {"target": "ACGT", "query": "ACGT", "timeout_s": 5}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._stream(url, body)
        assert excinfo.value.code == 400
        assert "timeout_s" in _error_body(excinfo)["message"]

    def test_unknown_reference_streams_an_error_status(self, endpoint):
        url, _ = endpoint
        body = {"target_ref": "0" * 64, "query": "ACGT"}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._stream(url, body)
        # No store configured: the ref is a 400 before the stream starts.
        assert excinfo.value.code in (400, 404)


class TestGracefulDrain:
    @pytest.fixture()
    def drain_endpoint(self):
        service = AlignmentService(
            max_wait_ms=1.0, config=CONFIG, stream_chunk_bp=1024
        )
        server = make_server(service, "127.0.0.1", 0, grace_s=30.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield f"http://{host}:{port}", server, thread
        server.server_close()
        service.shutdown(timeout=60)

    def test_mid_stream_drain_sends_terminal_error(self, drain_endpoint):
        url, server, thread = drain_endpoint
        pair = build_pair(
            "http-drain",
            target_length=30_000,
            query_length=30_000,
            classes=[SegmentClass("s", 12, 80, 250, divergence=0.05)],
            rng=17,
        )
        data = json.dumps(
            {"target": pair.target.text(), "query": pair.query.text()}
        ).encode()
        request = urllib.request.Request(
            f"{url}/v1/align?stream=1",
            data=data,
            headers={"Content-Type": "application/json"},
        )
        records = []
        probes = {}
        with urllib.request.urlopen(request, timeout=300) as response:
            for line in response:
                if not line.strip():
                    continue
                records.append(json.loads(line))
                if len(records) == 1:
                    # First partial arrived: begin the graceful drain.
                    # The open stream keeps the accept loop alive, so the
                    # probes below exercise the mid-drain server state.
                    server.initiate_shutdown()
                    probes["healthz"] = _get(url, "/v1/healthz")[1]
                    try:
                        req = urllib.request.Request(
                            f"{url}/v1/align",
                            data=json.dumps(
                                {"target": "ACGT", "query": "ACGT"}
                            ).encode(),
                            headers={"Content-Type": "application/json"},
                        )
                        urllib.request.urlopen(req, timeout=30)
                        probes["align"] = None
                    except urllib.error.HTTPError as exc:
                        probes["align"] = (exc.code, json.loads(exc.read()))

        assert records[0]["type"] == "partial"
        assert records[-1]["type"] == "error"
        assert records[-1]["error"]["code"] == "shutting_down"

        # Mid-drain, the health probe reports the state change...
        assert probes["healthz"] == {"status": "draining"}
        # ...and a new request gets an immediate 503, not a hang.
        assert probes["align"] is not None
        status, body = probes["align"]
        assert status == 503
        assert body["error"]["code"] == "shutting_down"

        # With its streams gone, the server stops within the grace window.
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestBadRequests:
    def test_invalid_json_400(self, endpoint):
        url, _ = endpoint
        request = urllib.request.Request(
            f"{url}/v1/align", data=b"not json", headers={"Content-Type": "text/plain"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert _error_body(excinfo)["code"] == "bad_request"

    def test_missing_fields_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT"})
        assert excinfo.value.code == 400

    def test_bad_timeout_type_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT", "query": "ACGT", "timeout_s": "soon"})
        assert excinfo.value.code == 400

    def test_boolean_timeout_400(self, endpoint):
        # bool passes isinstance(x, int); it must still be rejected rather
        # than silently interpreted as a 1-second (or 0-second) deadline.
        url, _ = endpoint
        for value in (True, False):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(url, {"target": "ACGT", "query": "ACGT", "timeout_s": value})
            assert excinfo.value.code == 400

    def test_unknown_option_key_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                url,
                {
                    "target": "ACGT",
                    "query": "ACGT",
                    "options": {"enginee": "batched"},
                },
            )
        assert excinfo.value.code == 400
        error = _error_body(excinfo)
        assert error["code"] == "bad_request"
        assert "enginee" in error["message"]

    def test_bad_option_value_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                url,
                {"target": "ACGT", "query": "ACGT", "options": {"engine": "quantum"}},
            )
        assert excinfo.value.code == 400

    def test_non_mapping_options_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT", "query": "ACGT", "options": [1, 2]})
        assert excinfo.value.code == 400

    def test_non_dna_sequence_400(self, endpoint):
        # The encoding LUT maps junk to N, so without strict validation
        # this body was accepted (aligned as all-N) instead of rejected.
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT123!", "query": "ACGT"})
        assert excinfo.value.code == 400
        assert "target" in _error_body(excinfo)["message"]

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT", "query": "ACGU"})
        assert excinfo.value.code == 400
        assert "query" in _error_body(excinfo)["message"]

    def test_non_ascii_sequence_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGTé", "query": "ACGT"})
        assert excinfo.value.code == 400

    def test_empty_body_400(self, endpoint):
        url, _ = endpoint
        request = urllib.request.Request(f"{url}/v1/align", data=b"")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
