"""End-to-end tests of the versioned JSON/HTTP endpoint (stdlib client)."""

import http.client
import json
import threading
import urllib.error
import urllib.request
import urllib.parse

import pytest

from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.service import AlignmentService, make_server
from repro.service.http import API_PREFIX, LEGACY_PATHS

CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))


@pytest.fixture(scope="module")
def endpoint():
    service = AlignmentService(max_wait_ms=1.0, config=CONFIG)
    server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()
    service.shutdown(timeout=60)


def _post(url, payload, timeout=300):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        f"{url}/v1/align", data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get(url, path, timeout=30):
    with urllib.request.urlopen(f"{url}{path}", timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _get_text(url, path, timeout=30):
    with urllib.request.urlopen(f"{url}{path}", timeout=timeout) as response:
        return response.status, response.read().decode()


def _error_body(excinfo) -> dict:
    """Parse the error envelope from a raised HTTPError."""
    body = json.loads(excinfo.value.read())
    assert set(body) == {"error"}
    assert set(body["error"]) == {"code", "message"}
    return body["error"]


class TestRoutes:
    def test_healthz(self, endpoint):
        url, _ = endpoint
        status, payload = _get(url, "/v1/healthz")
        assert status == 200 and payload == {"status": "ok"}

    def test_align_roundtrip(self, endpoint):
        url, _ = endpoint
        pair = build_pair(
            "http",
            target_length=12_000,
            query_length=12_000,
            classes=[SegmentClass("s", 6, 80, 250, divergence=0.05)],
            rng=11,
        )
        status, payload = _post(
            url, {"target": pair.target.text(), "query": pair.query.text()}
        )
        assert status == 200
        assert payload["count"] >= 1
        first = payload["alignments"][0]
        assert first["score"] >= CONFIG.scheme.gapped_threshold
        assert first["target_end"] > first["target_start"]
        assert first["cigar"]

    def test_align_with_options_body(self, endpoint):
        url, _ = endpoint
        pair = build_pair(
            "http-opts",
            target_length=12_000,
            query_length=12_000,
            classes=[SegmentClass("s", 6, 80, 250, divergence=0.05)],
            rng=12,
        )
        body = {"target": pair.target.text(), "query": pair.query.text()}
        _, default_payload = _post(url, body)
        _, batched_payload = _post(
            url, {**body, "options": {"engine": "batched", "batch_size": 64}}
        )
        # Engines are bit-identical; the option override must not 400.
        assert batched_payload["alignments"] == default_payload["alignments"]

    def test_stats_endpoint(self, endpoint):
        url, _ = endpoint
        status, payload = _get(url, "/v1/stats")
        assert status == 200
        assert payload["submitted"] >= 1
        assert "cache" in payload
        assert "shed" in payload
        # In-process backend: no pool section.
        assert payload["pool"] is None

    def test_metrics_endpoint_agrees_with_stats(self, endpoint):
        url, _ = endpoint
        _, stats = _get(url, "/v1/stats")
        status, text = _get_text(url, "/v1/metrics")
        assert status == 200
        assert "# TYPE repro_service_events_total counter" in text
        # Both endpoints read the same registry, so the counts agree.
        assert (
            f'repro_service_events_total{{kind="submitted"}} {stats["submitted"]}'
            in text
        )
        if stats["completed"]:
            assert (
                f'repro_service_events_total{{kind="completed"}} {stats["completed"]}'
                in text
            )
        assert "repro_service_request_latency_seconds_bucket" in text
        assert "repro_service_queue_depth" in text
        assert 'repro_service_cache{field="hits"}' in text

    def test_unknown_path_404(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(url, "/v1/nope")
        assert excinfo.value.code == 404
        assert _error_body(excinfo)["code"] == "not_found"


class TestLegacyRedirects:
    def test_get_paths_redirect_307_with_deprecation(self, endpoint):
        # urllib auto-follows GET redirects, so talk raw HTTP to see them.
        url, _ = endpoint
        parsed = urllib.parse.urlparse(url)
        for path in LEGACY_PATHS:
            conn = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=30)
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                assert response.status == 307, path
                assert response.getheader("Location") == API_PREFIX + path
                assert response.getheader("Deprecation") == "true"
            finally:
                conn.close()

    def test_legacy_get_followed_still_works(self, endpoint):
        # End-to-end: a legacy client that follows redirects keeps working.
        url, _ = endpoint
        status, payload = _get(url, "/healthz")
        assert status == 200 and payload == {"status": "ok"}

    def test_legacy_post_align_redirects_307(self, endpoint):
        # urllib refuses to follow POST 307s, surfacing the redirect —
        # exactly what we assert on (307 preserves method + body).
        url, _ = endpoint
        data = json.dumps({"target": "ACGT", "query": "ACGT"}).encode()
        request = urllib.request.Request(
            f"{url}/align", data=data, headers={"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 307
        assert excinfo.value.headers["Location"] == "/v1/align"
        assert excinfo.value.headers["Deprecation"] == "true"


class TestBadRequests:
    def test_invalid_json_400(self, endpoint):
        url, _ = endpoint
        request = urllib.request.Request(
            f"{url}/v1/align", data=b"not json", headers={"Content-Type": "text/plain"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert _error_body(excinfo)["code"] == "bad_request"

    def test_missing_fields_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT"})
        assert excinfo.value.code == 400

    def test_bad_timeout_type_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT", "query": "ACGT", "timeout_s": "soon"})
        assert excinfo.value.code == 400

    def test_boolean_timeout_400(self, endpoint):
        # bool passes isinstance(x, int); it must still be rejected rather
        # than silently interpreted as a 1-second (or 0-second) deadline.
        url, _ = endpoint
        for value in (True, False):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(url, {"target": "ACGT", "query": "ACGT", "timeout_s": value})
            assert excinfo.value.code == 400

    def test_unknown_option_key_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                url,
                {
                    "target": "ACGT",
                    "query": "ACGT",
                    "options": {"enginee": "batched"},
                },
            )
        assert excinfo.value.code == 400
        error = _error_body(excinfo)
        assert error["code"] == "bad_request"
        assert "enginee" in error["message"]

    def test_bad_option_value_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                url,
                {"target": "ACGT", "query": "ACGT", "options": {"engine": "quantum"}},
            )
        assert excinfo.value.code == 400

    def test_non_mapping_options_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT", "query": "ACGT", "options": [1, 2]})
        assert excinfo.value.code == 400

    def test_non_dna_sequence_400(self, endpoint):
        # The encoding LUT maps junk to N, so without strict validation
        # this body was accepted (aligned as all-N) instead of rejected.
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT123!", "query": "ACGT"})
        assert excinfo.value.code == 400
        assert "target" in _error_body(excinfo)["message"]

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGT", "query": "ACGU"})
        assert excinfo.value.code == 400
        assert "query" in _error_body(excinfo)["message"]

    def test_non_ascii_sequence_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, {"target": "ACGTé", "query": "ACGT"})
        assert excinfo.value.code == 400

    def test_empty_body_400(self, endpoint):
        url, _ = endpoint
        request = urllib.request.Request(f"{url}/v1/align", data=b"")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
