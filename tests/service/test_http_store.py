"""HTTP surface of the reference store: /v1/references, align-by-ref, 413."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.service import AlignmentService, make_server
from repro.store import ReferenceStore

CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))


@pytest.fixture(scope="module")
def pair():
    return build_pair(
        "httpstore",
        target_length=12_000,
        query_length=12_000,
        classes=[SegmentClass("s", 6, 80, 250, divergence=0.05)],
        rng=11,
    )


@pytest.fixture(scope="module")
def endpoint(tmp_path_factory):
    store = ReferenceStore(tmp_path_factory.mktemp("httpstore"))
    service = AlignmentService(max_wait_ms=1.0, config=CONFIG, store=store)
    server = make_server(
        service, "127.0.0.1", 0, max_align_body=64 * 1024
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service
    server.shutdown()
    server.server_close()
    service.shutdown(timeout=60)


def _post(url, path, payload, timeout=300):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        f"{url}/v1{path}", data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def _error(excinfo) -> dict:
    body = json.loads(excinfo.value.read())
    assert set(body) == {"error"}
    return body["error"]


class TestReferences:
    def test_register_then_list(self, endpoint, pair):
        url, _ = endpoint
        status, payload = _post(
            url, "/references",
            {"sequence": pair.target.text(), "name": "chrT"},
        )
        assert status == 200
        assert payload["registered"] is True
        assert payload["name"] == "chrT"
        assert payload["length"] == len(pair.target)
        digest = payload["digest"]

        # Idempotent re-register reports the existing entry.
        _, again = _post(url, "/references", {"sequence": pair.target.text()})
        assert again["digest"] == digest
        assert again["registered"] is False

        with urllib.request.urlopen(f"{url}/v1/references", timeout=30) as resp:
            listing = json.loads(resp.read())
        assert digest in {e["digest"] for e in listing["references"]}

    def test_align_by_ref_matches_by_bytes(self, endpoint, pair):
        url, _ = endpoint
        _, reg = _post(url, "/references", {"sequence": pair.target.text()})
        _, by_ref = _post(
            url, "/align",
            {"target_ref": reg["digest"], "query": pair.query.text()},
        )
        _, by_bytes = _post(
            url, "/align",
            {"target": pair.target.text(), "query": pair.query.text()},
        )
        assert by_ref["alignments"] == by_bytes["alignments"]
        assert by_ref["count"] == by_bytes["count"]

    def test_unknown_ref_404(self, endpoint, pair):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, "/align", {"target_ref": "0" * 64, "query": "ACGT" * 20})
        assert excinfo.value.code == 404
        assert _error(excinfo)["code"] == "not_found"

    def test_both_value_and_ref_400(self, endpoint, pair):
        url, _ = endpoint
        _, reg = _post(url, "/references", {"sequence": pair.target.text()})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(
                url, "/align",
                {
                    "target": pair.target.text(),
                    "target_ref": reg["digest"],
                    "query": pair.query.text(),
                },
            )
        assert excinfo.value.code == 400

    def test_missing_sequence_400(self, endpoint):
        url, _ = endpoint
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, "/references", {"name": "x"})
        assert excinfo.value.code == 400


class TestPayloadTooLarge:
    def test_oversize_align_413_points_at_references(self, endpoint):
        url, _ = endpoint
        big = "A" * (80 * 1024)  # past the 64 KiB test limit
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(url, "/align", {"target": big, "query": "ACGT" * 10})
        assert excinfo.value.code == 413
        error = _error(excinfo)
        assert error["code"] == "payload_too_large"
        assert "/v1/references" in error["message"]

    def test_register_not_bound_by_align_limit(self, endpoint):
        url, _ = endpoint
        big = "ACGT" * (32 * 1024)  # 128 KiB of sequence, over align limit
        status, payload = _post(url, "/references", {"sequence": big})
        assert status == 200
        assert payload["length"] == len(big)

    def test_under_limit_still_aligns(self, endpoint, pair):
        url, _ = endpoint
        status, _payload = _post(
            url, "/align",
            {"target": pair.target.text(), "query": pair.query.text()},
        )
        assert status == 200


class TestNoStore:
    def test_register_without_store_400(self):
        service = AlignmentService(max_wait_ms=1.0, config=CONFIG)
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(url, "/references", {"sequence": "ACGT" * 10})
            assert excinfo.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(url, "/align", {"target_ref": "0" * 64, "query": "ACGT"})
            assert excinfo.value.code == 400
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(timeout=60)
