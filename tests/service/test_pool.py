"""Multiprocess backend tests: equivalence, fault tolerance, degradation.

The load-bearing property is bit-identity: the pool shards fused
extension batches across worker processes, and because every extension
task is independent, the reassembled records — and therefore every
alignment the service returns — must match the in-process backend byte
for byte at any worker count, through any number of worker deaths.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.options import FastzOptions
from repro.core.pipeline import (
    extend_suffixes_batched,
    prepare_fastz,
    shard_anchor_suffixes,
)
from repro.genome import SegmentClass, build_pair
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.service import AlignmentService, PoolError, WorkerPool

CONFIG = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))

KILL_ENV = "REPRO_POOL_TEST_KILL_WORKER"


def _pairs(n=4, length=8_000, seed=23):
    out = []
    for i in range(n):
        pair = build_pair(
            f"pool{i}",
            target_length=length,
            query_length=length,
            classes=[SegmentClass("s", 4, 80, 250, divergence=0.05)],
            rng=seed + i,
        )
        out.append((pair.target, pair.query))
    return out


def _run_service(pairs, **kwargs):
    """Align every pair on a fresh service; returns comparable tuples."""
    outs = []
    with AlignmentService(max_wait_ms=1.0, config=CONFIG, **kwargs) as service:
        for target, query in pairs:
            result = service.align(target, query, timeout_s=300)
            outs.append(
                [
                    (a.score, a.target_start, a.target_end,
                     a.query_start, a.query_end, a.cigar())
                    for a in result.unique_alignments()
                ]
            )
        stats = service.stats()
    return outs, stats


@pytest.fixture(scope="module")
def prep():
    target, query = _pairs(n=1, length=12_000)[0]
    return prepare_fastz(
        target.codes, query.codes, CONFIG, FastzOptions(engine="batched")
    )


class TestShardPlan:
    def test_covers_anchors_disjointly(self, prep):
        suffixes = prep.suffixes()
        shards = shard_anchor_suffixes(suffixes, 3)
        anchors = sorted(a for idx, _sub in shards for a in idx)
        assert anchors == list(range(prep.n_anchors))
        for idx, sub in shards:
            assert len(sub) == 2 * len(idx)

    def test_sub_lists_keep_interleaving(self, prep):
        suffixes = prep.suffixes()
        for idx, sub in shard_anchor_suffixes(suffixes, 2):
            for local, anchor in enumerate(idx):
                assert sub[2 * local] is suffixes[2 * anchor]
                assert sub[2 * local + 1] is suffixes[2 * anchor + 1]

    def test_never_more_shards_than_anchors(self, prep):
        shards = shard_anchor_suffixes(prep.suffixes(), prep.n_anchors + 16)
        assert len(shards) <= prep.n_anchors

    def test_validation(self, prep):
        with pytest.raises(ValueError):
            shard_anchor_suffixes(prep.suffixes(), 0)


class TestWorkerPool:
    def test_extend_matches_in_process(self, prep):
        suffixes = prep.suffixes()
        expected = extend_suffixes_batched(
            suffixes, prep.scheme, prep.options, prep.tile
        )
        pool = WorkerPool(2)
        try:
            got = pool.extend(
                suffixes, prep.scheme, prep.options, prep.tile, key="k"
            )
        finally:
            pool.close()
        assert got == expected

    def test_empty_batch(self):
        pool = WorkerPool(1)
        try:
            assert pool.extend([], None, None, 16, key="k") == []
        finally:
            pool.close()

    def test_warm_cache_ships_params_once(self, prep):
        pool = WorkerPool(1)
        try:
            suffixes = prep.suffixes()
            pool.extend(suffixes, prep.scheme, prep.options, prep.tile, key="k")
            assert "k" in pool._workers[0].seen
            # Second dispatch reuses the worker-resident params.
            pool.extend(suffixes, prep.scheme, prep.options, prep.tile, key="k")
            assert pool.dispatches == 2
        finally:
            pool.close()

    def test_closed_pool_raises(self, prep):
        pool = WorkerPool(1)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(PoolError):
            pool.extend(prep.suffixes(), prep.scheme, prep.options, prep.tile, key="k")

    def test_stats_shape(self):
        pool = WorkerPool(2)
        try:
            stats = pool.stats()
            assert stats["workers"] == 2
            assert stats["alive"] == 2
            assert set(stats) == {
                "workers", "alive", "dispatches", "respawns",
                "redispatches", "degraded",
            }
        finally:
            pool.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestServiceEquivalence:
    def test_bit_identical_across_worker_counts(self):
        pairs = _pairs(n=4)
        baseline, base_stats = _run_service(pairs, pool_workers=0)
        for workers in (1, 4):
            outs, stats = _run_service(pairs, pool_workers=workers)
            assert outs == baseline, f"pool_workers={workers} diverged"
            assert stats.completed == base_stats.completed
            assert stats.failed == 0
            assert stats.pool["workers"] == workers
            assert stats.pool["dispatches"] >= 1
        assert base_stats.pool is None

    def test_pool_section_in_stats_dict(self):
        (target, query), = _pairs(n=1)
        with AlignmentService(
            max_wait_ms=1.0, config=CONFIG, pool_workers=2
        ) as service:
            service.align(target, query, timeout_s=300)
            payload = service.stats().as_dict()
        assert payload["pool"]["workers"] == 2
        assert payload["pool"]["respawns"] == 0


class TestFaultTolerance:
    def test_sigkilled_worker_mid_batch_completes(self, monkeypatch):
        # Worker 0 hard-exits (SIGKILL semantics) on its first shard; the
        # pool must respawn it, re-dispatch the shard, and the request
        # must still complete with the in-process answer.
        pairs = _pairs(n=2)
        baseline, _ = _run_service(pairs, pool_workers=0)
        monkeypatch.setenv(KILL_ENV, "0")
        outs, stats = _run_service(pairs, pool_workers=2)
        assert outs == baseline
        assert stats.failed == 0
        assert stats.pool["respawns"] >= 1
        assert stats.pool["redispatches"] >= 1
        assert stats.pool["alive"] == 2

    def test_idle_worker_killed_between_batches(self):
        pairs = _pairs(n=2)
        baseline, _ = _run_service(pairs, pool_workers=0)
        with AlignmentService(
            max_wait_ms=1.0, config=CONFIG, pool_workers=2
        ) as service:
            first = service.align(*pairs[0], timeout_s=300)
            victim = service.pool.worker_pids[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 10
            while service.pool.n_alive == 2 and time.monotonic() < deadline:
                time.sleep(0.05)
            second = service.align(*pairs[1], timeout_s=300)
            stats = service.stats()
        for result, expected in ((first, baseline[0]), (second, baseline[1])):
            got = [
                (a.score, a.target_start, a.target_end,
                 a.query_start, a.query_end, a.cigar())
                for a in result.unique_alignments()
            ]
            assert got == expected
        assert stats.pool["respawns"] >= 1
        assert stats.failed == 0

    def test_repeated_deaths_degrade_to_in_process(self, monkeypatch):
        # Every spawned worker is on the kill list, so each re-dispatch
        # kills its replacement too; past max_redispatch the pool raises
        # PoolError and the dispatcher must fall back in-process — the
        # request completes anyway.
        pairs = _pairs(n=1)
        baseline, _ = _run_service(pairs, pool_workers=0)
        monkeypatch.setenv(KILL_ENV, ",".join(str(i) for i in range(64)))
        outs, stats = _run_service(pairs, pool_workers=2)
        assert outs == baseline
        assert stats.failed == 0
        assert stats.pool["degraded"] >= 1

    def test_poisoned_request_fails_alone_and_pool_survives(self):
        # Codes value 99 is outside the alphabet and detonates inside the
        # extension handler on the worker: that is a reported failure, not
        # a death — the culprit's future fails, the pool stays up, and the
        # next request is served normally.
        (target, query), = _pairs(n=1)
        rng = np.random.default_rng(3)
        poison = rng.integers(0, 4, 2_000, dtype=np.uint8)
        poison[500:600] = 99
        from repro.seeding import Anchors

        with AlignmentService(
            max_wait_ms=1.0, config=CONFIG, pool_workers=2
        ) as service:
            with pytest.raises(Exception):
                service.align(
                    poison, poison,
                    anchors=Anchors(np.array([550]), np.array([550])),
                    timeout_s=300,
                )
            result = service.align(target, query, timeout_s=300)
            stats = service.stats()
        assert len(result.unique_alignments()) >= 1
        assert stats.failed == 1
        assert stats.completed >= 1
        assert stats.pool["alive"] == 2
        # Poison is not a worker death: nothing was respawned for it.
        assert stats.pool["degraded"] == 0
