"""Unit tests for the LRU result cache and request digests."""

import numpy as np
import pytest

from repro.core.options import FastzOptions
from repro.lastz.config import LastzConfig
from repro.scoring import default_scheme
from repro.service import AlignmentRequest, ResultCache


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a": "b" is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_clear(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.clear()
        assert cache.get("a") is None


def _request(target, query, **kwargs):
    config = kwargs.pop("config", LastzConfig(scheme=default_scheme()))
    options = kwargs.pop("options", FastzOptions(engine="batched"))
    return AlignmentRequest(
        target=target, query=query, config=config, options=options, **kwargs
    )


class TestRequestKeys:
    def setup_method(self):
        rng = np.random.default_rng(5)
        self.t = rng.integers(0, 4, 500, dtype=np.uint8)
        self.q = rng.integers(0, 4, 500, dtype=np.uint8)

    def test_cache_key_deterministic(self):
        assert (
            _request(self.t, self.q).cache_key == _request(self.t, self.q).cache_key
        )

    def test_cache_key_sees_sequences(self):
        other = self.t.copy()
        other[0] = (other[0] + 1) % 4
        assert _request(self.t, self.q).cache_key != _request(other, self.q).cache_key
        assert _request(self.t, self.q).cache_key != _request(self.q, self.t).cache_key

    def test_cache_key_sees_substitution_matrix(self):
        # ScoringScheme hides the matrix from repr; the digest must not.
        base = default_scheme()
        tweaked = np.array(base.substitution)
        tweaked[0, 0] += 1
        from dataclasses import replace

        other = replace(base, substitution=tweaked)
        k1 = _request(self.t, self.q, config=LastzConfig(scheme=base)).cache_key
        k2 = _request(self.t, self.q, config=LastzConfig(scheme=other)).cache_key
        assert k1 != k2

    def test_cache_key_sees_options(self):
        k1 = _request(self.t, self.q, options=FastzOptions()).cache_key
        k2 = _request(self.t, self.q, options=FastzOptions(eager_traceback=False)).cache_key
        assert k1 != k2

    def test_fuse_key_groups_compatible_requests(self):
        assert _request(self.t, self.q).fuse_key == _request(self.q, self.t).fuse_key
        fast = LastzConfig(scheme=default_scheme(gap_extend=60, ydrop=2400))
        assert (
            _request(self.t, self.q).fuse_key
            != _request(self.t, self.q, config=fast).fuse_key
        )

    def test_rejects_matrix_codes(self):
        with pytest.raises(ValueError):
            _request(self.t.reshape(20, 25), self.q)
