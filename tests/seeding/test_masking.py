"""Unit tests for soft-mask handling in seeding."""

import numpy as np
import pytest

from repro.genome import encode_with_mask, random_codes
from repro.seeding import find_seeds


class TestEncodeWithMask:
    def test_lowercase_marked(self):
        codes, mask = encode_with_mask("ACgtA")
        assert codes.tolist() == [0, 1, 2, 3, 0]
        assert mask.tolist() == [False, False, True, True, False]

    def test_n_lowercase(self):
        codes, mask = encode_with_mask("nN")
        assert codes.tolist() == [4, 4]
        assert mask.tolist() == [True, False]

    def test_empty(self):
        codes, mask = encode_with_mask("")
        assert codes.shape == (0,) and mask.shape == (0,)


class TestMaskedSeeding:
    @pytest.fixture()
    def planted(self, rng):
        word = random_codes(rng, 19)
        t = np.concatenate([random_codes(rng, 50), word, random_codes(rng, 50)])
        q = np.concatenate([random_codes(rng, 30), word, random_codes(rng, 70)])
        return t, q

    def test_unmasked_baseline(self, planted):
        t, q = planted
        seeds = find_seeds(t, q, k=19)
        assert (50, 30) in set(zip(seeds.target_pos.tolist(), seeds.query_pos.tolist()))

    def test_target_mask_suppresses_seed(self, planted):
        t, q = planted
        t_mask = np.zeros(t.shape[0], dtype=bool)
        t_mask[55] = True  # one masked base inside the word
        seeds = find_seeds(t, q, k=19, target_mask=t_mask)
        assert (50, 30) not in set(
            zip(seeds.target_pos.tolist(), seeds.query_pos.tolist())
        )

    def test_query_mask_suppresses_seed(self, planted):
        t, q = planted
        q_mask = np.zeros(q.shape[0], dtype=bool)
        q_mask[30:49] = True
        seeds = find_seeds(t, q, k=19, query_mask=q_mask)
        assert len(seeds) == 0

    def test_mask_outside_word_is_harmless(self, planted):
        t, q = planted
        t_mask = np.zeros(t.shape[0], dtype=bool)
        t_mask[:40] = True  # masked region ends before the word
        seeds = find_seeds(t, q, k=19, target_mask=t_mask)
        assert (50, 30) in set(zip(seeds.target_pos.tolist(), seeds.query_pos.tolist()))

    def test_mask_shape_validated(self, planted):
        t, q = planted
        with pytest.raises(ValueError):
            find_seeds(t, q, k=19, target_mask=np.zeros(3, dtype=bool))
        with pytest.raises(ValueError):
            find_seeds(t, q, k=19, query_mask=np.zeros(3, dtype=bool))

    def test_fasta_lowercase_roundtrip(self):
        # End to end: lowercase FASTA text -> mask -> no seeds from repeats.
        text_t = "ACGT" * 5 + "acgtacgtacgtacgtacg" + "TGCA" * 5
        text_q = "GGTT" * 5 + "ACGTACGTACGTACGTACG" + "AACC" * 5
        codes_t, mask_t = encode_with_mask(text_t)
        codes_q, mask_q = encode_with_mask(text_q)
        unmasked = find_seeds(codes_t, codes_q, k=19)
        masked = find_seeds(codes_t, codes_q, k=19, target_mask=mask_t)
        assert len(unmasked) > 0
        assert len(masked) < len(unmasked)
