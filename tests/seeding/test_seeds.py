"""Unit tests for seed discovery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.genome import encode, random_codes
from repro.seeding import LASTZ_SPACED_SEED, find_seeds, pack_kmers, pack_spaced


class TestPackKmers:
    def test_known_words(self):
        words, valid = pack_kmers(encode("ACGT"), 2)
        # AC=0b0001=1, CG=0b0110=6, GT=0b1011=11.
        assert words.tolist() == [1, 6, 11]
        assert valid.all()

    def test_n_invalidates_window(self):
        words, valid = pack_kmers(encode("ACNGT"), 2)
        assert valid.tolist() == [True, False, False, True]

    def test_short_input(self):
        words, valid = pack_kmers(encode("AC"), 5)
        assert words.shape == (0,) and valid.shape == (0,)

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            pack_kmers(encode("ACGT"), 0)
        with pytest.raises(ValueError):
            pack_kmers(encode("ACGT"), 32)

    def test_k19_fits_uint64(self, rng):
        codes = random_codes(rng, 100)
        words, valid = pack_kmers(codes, 19)
        assert words.dtype == np.uint64
        assert valid.all()

    @given(st.text(alphabet="ACGT", min_size=4, max_size=40))
    def test_equal_windows_have_equal_words(self, text):
        codes = encode(text)
        words, _ = pack_kmers(codes, 4)
        for i in range(len(words)):
            for j in range(len(words)):
                same = text[i : i + 4] == text[j : j + 4]
                assert (words[i] == words[j]) == same


class TestPackSpaced:
    def test_dont_care_positions_ignored(self):
        # Pattern 101: middle base is free.
        w1, _ = pack_spaced(encode("ACA"), "101")
        w2, _ = pack_spaced(encode("AGA"), "101")
        assert w1[0] == w2[0]

    def test_care_positions_matter(self):
        w1, _ = pack_spaced(encode("ACA"), "101")
        w2, _ = pack_spaced(encode("CCA"), "101")
        assert w1[0] != w2[0]

    def test_lastz_default_pattern(self, rng):
        codes = random_codes(rng, 200)
        words, valid = pack_spaced(codes, LASTZ_SPACED_SEED)
        assert words.shape[0] == 200 - len(LASTZ_SPACED_SEED) + 1
        assert valid.all()

    def test_pattern_validation(self):
        with pytest.raises(ValueError):
            pack_spaced(encode("ACGT"), "")
        with pytest.raises(ValueError):
            pack_spaced(encode("ACGT"), "10a")
        with pytest.raises(ValueError):
            pack_spaced(encode("ACGT"), "000")


def _brute_force_matches(t: str, q: str, k: int):
    out = set()
    for i in range(len(t) - k + 1):
        for j in range(len(q) - k + 1):
            if t[i : i + k] == q[j : j + k]:
                out.add((i, j))
    return out


class TestFindSeeds:
    def test_planted_exact_match(self, rng):
        word = random_codes(rng, 19)
        t = np.concatenate([random_codes(rng, 100), word, random_codes(rng, 100)])
        q = np.concatenate([random_codes(rng, 50), word, random_codes(rng, 150)])
        seeds = find_seeds(t, q, k=19)
        assert (100, 50) in set(zip(seeds.target_pos.tolist(), seeds.query_pos.tolist()))

    def test_no_matches_between_random(self, rng):
        t = random_codes(rng, 2000)
        q = random_codes(rng, 2000)
        seeds = find_seeds(t, q, k=19)
        assert len(seeds) == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.text(alphabet="AC", min_size=5, max_size=25),
        st.text(alphabet="AC", min_size=5, max_size=25),
    )
    def test_matches_brute_force(self, t_text, q_text):
        k = 5
        seeds = find_seeds(encode(t_text), encode(q_text), k=k, max_word_count=10**6)
        got = set(zip(seeds.target_pos.tolist(), seeds.query_pos.tolist()))
        assert got == _brute_force_matches(t_text, q_text, k)

    def test_censoring_drops_frequent_words(self, rng):
        word = random_codes(rng, 8)
        t = np.tile(word, 50)  # the word occurs ~50 times
        q = np.concatenate([word, random_codes(rng, 50)])
        few = find_seeds(t, q, k=8, max_word_count=4)
        many = find_seeds(t, q, k=8, max_word_count=1000)
        assert len(few) < len(many)

    def test_diagonals(self):
        t = encode("AAAACCCC")
        q = encode("TTAAAACCCC")
        seeds = find_seeds(t, q, k=8)
        assert len(seeds) == 1
        assert seeds.diagonals().tolist() == [-2]

    def test_spaced_seed_finds_mismatched_window(self, rng):
        # A window matching everywhere except one don't-care position.
        base = random_codes(rng, len(LASTZ_SPACED_SEED))
        variant = base.copy()
        dc = LASTZ_SPACED_SEED.index("0")
        variant[dc] = (variant[dc] + 1) % 4
        t = np.concatenate([random_codes(rng, 40), base, random_codes(rng, 40)])
        q = np.concatenate([random_codes(rng, 40), variant, random_codes(rng, 40)])
        exact = find_seeds(t, q, k=len(LASTZ_SPACED_SEED))
        spaced = find_seeds(t, q, spaced_pattern=LASTZ_SPACED_SEED)
        hits = set(zip(spaced.target_pos.tolist(), spaced.query_pos.tolist()))
        assert (40, 40) in hits
        assert (40, 40) not in set(
            zip(exact.target_pos.tolist(), exact.query_pos.tolist())
        )

    def test_canonical_ordering(self, rng):
        word = random_codes(rng, 10)
        t = np.concatenate([word, random_codes(rng, 30), word])
        q = np.concatenate([word, random_codes(rng, 10), word])
        seeds = find_seeds(t, q, k=10, max_word_count=100)
        qp = seeds.query_pos
        assert np.all(np.diff(qp) >= 0)

    def test_empty_inputs(self):
        seeds = find_seeds(encode(""), encode("ACGT"), k=4)
        assert len(seeds) == 0
        assert seeds.span == 4
