"""Unit tests for seed filtering."""

import numpy as np
import pytest

from repro.genome import mutate, random_codes
from repro.scoring import unit_scheme
from repro.seeding import Anchors, collapse_diagonal, find_seeds, ungapped_filter
from repro.seeding.seeds import SeedMatches


def _seeds(pairs, span=19):
    t = np.array([p[0] for p in pairs], dtype=np.int64)
    q = np.array([p[1] for p in pairs], dtype=np.int64)
    return SeedMatches(t, q, span)


class TestCollapseDiagonal:
    def test_single_seed(self):
        anchors = collapse_diagonal(_seeds([(100, 50)]), window=500)
        assert len(anchors) == 1
        # Anchor at the seed-word centre.
        assert anchors.target_pos[0] == 100 + 9
        assert anchors.query_pos[0] == 50 + 9

    def test_run_on_one_diagonal_collapses(self):
        pairs = [(100 + k, 50 + k) for k in range(0, 400, 10)]
        anchors = collapse_diagonal(_seeds(pairs), window=500)
        assert len(anchors) == 1

    def test_far_apart_seeds_survive(self):
        pairs = [(100, 50), (900, 850)]  # same diagonal, 800 apart
        anchors = collapse_diagonal(_seeds(pairs), window=500)
        assert len(anchors) == 2

    def test_different_diagonals_kept_without_band(self):
        pairs = [(100, 50), (103, 50)]  # diagonals differ by 3
        anchors = collapse_diagonal(_seeds(pairs), window=500, diag_band=0)
        assert len(anchors) == 2

    def test_band_merges_nearby_diagonals(self):
        pairs = [(100, 50), (103, 50)]
        anchors = collapse_diagonal(_seeds(pairs), window=500, diag_band=10)
        assert len(anchors) == 1

    def test_band_does_not_merge_distant_diagonals(self):
        pairs = [(100, 50), (400, 50)]  # diagonals 50 and 350
        anchors = collapse_diagonal(_seeds(pairs), window=500, diag_band=10)
        assert len(anchors) == 2

    def test_window_validation(self):
        with pytest.raises(ValueError):
            collapse_diagonal(_seeds([(0, 0)]), window=0)
        with pytest.raises(ValueError):
            collapse_diagonal(_seeds([(0, 0)]), window=5, diag_band=-1)

    def test_empty(self):
        anchors = collapse_diagonal(_seeds([]), window=500)
        assert len(anchors) == 0

    def test_indel_shifted_run_collapses_with_band(self):
        # A homology whose diagonal drifts by small indels: one anchor.
        pairs = []
        diag = 50
        for k in range(0, 1000, 25):
            if k % 100 == 0:
                diag += 2  # small indel
            pairs.append((k + diag, k))
        exact = collapse_diagonal(_seeds(pairs), window=2000, diag_band=0)
        banded = collapse_diagonal(_seeds(pairs), window=2000, diag_band=100)
        assert len(banded) == 1
        assert len(exact) > 1


class TestAnchors:
    def test_take(self):
        a = Anchors(np.array([1, 2, 3]), np.array([4, 5, 6]))
        sub = a.take(np.array([0, 2]))
        assert sub.pairs() == [(1, 4), (3, 6)]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Anchors(np.zeros(2), np.zeros(3))


class TestUngappedFilter:
    def test_strong_anchor_survives(self, rng):
        scheme = unit_scheme(xdrop=5, hsp_threshold=20)
        core = random_codes(rng, 60)
        t = np.concatenate([random_codes(rng, 100), core, random_codes(rng, 100)])
        q = np.concatenate([random_codes(rng, 100), core, random_codes(rng, 100)])
        anchors = Anchors(np.array([130]), np.array([130]))
        surviving, scores = ungapped_filter(anchors, t, q, scheme)
        assert len(surviving) == 1
        assert scores[0] >= 20

    def test_weak_anchor_dropped(self, rng):
        scheme = unit_scheme(xdrop=5, hsp_threshold=20)
        t = random_codes(rng, 200)
        q = random_codes(rng, 200)
        anchors = Anchors(np.array([100]), np.array([100]))
        surviving, scores = ungapped_filter(anchors, t, q, scheme)
        assert len(surviving) == 0

    def test_gap_interrupted_homology_dropped(self, rng):
        """The Figure-2 mechanism: homology broken by an indel scores low
        ungapped even though a gapped extension would chain it."""
        scheme = unit_scheme(xdrop=5, hsp_threshold=50)
        block = random_codes(rng, 30)
        t = np.concatenate([block, block, random_codes(rng, 100)])
        q = np.concatenate([block, random_codes(rng, 20), block, random_codes(rng, 100)])
        anchors = Anchors(np.array([15]), np.array([15]))
        surviving, scores = ungapped_filter(anchors, t, q, scheme)
        assert len(surviving) == 0  # one 30-block tops out at score 30 < 50

    def test_scores_returned_for_all(self, rng):
        scheme = unit_scheme(xdrop=5, hsp_threshold=1000)
        t = random_codes(rng, 100)
        anchors = Anchors(np.array([10, 50, 90]), np.array([10, 50, 90]))
        surviving, scores = ungapped_filter(anchors, t, t.copy(), scheme)
        assert scores.shape == (3,)
